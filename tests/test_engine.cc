/**
 * @file
 * Sweep engine tests: worker-pool semantics, grid decoding, sink
 * formatting, percentile aggregation, the --jobs determinism
 * contract (parallel == serial, byte for byte) and the equivalence
 * of the engine's parameter grid with the single-point evaluator.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <filesystem>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/adaptivity.h"
#include "costmodel/cost_table_cache.h"
#include "engine/engine.h"
#include "engine/param_eval.h"
#include "engine/result_sink.h"
#include "engine/worker_pool.h"
#include "runner/trace.h"

namespace dream {
namespace {

TEST(WorkerPool, CoversEveryIndexExactlyOnce)
{
    constexpr size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits)
        h.store(0);

    engine::WorkerPool pool(8);
    pool.parallelFor(n, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(WorkerPool, SerialModeRunsInline)
{
    engine::WorkerPool pool(1);
    EXPECT_EQ(pool.jobs(), 1);
    std::vector<size_t> order;
    pool.parallelFor(5, [&](size_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(WorkerPool, PropagatesWorkerExceptions)
{
    engine::WorkerPool pool(4);
    EXPECT_THROW(pool.parallelFor(100,
                                  [&](size_t i) {
                                      if (i == 37)
                                          throw std::runtime_error("x");
                                  }),
                 std::runtime_error);
}

TEST(WorkerPool, NonPositiveJobsSelectsHardwareConcurrency)
{
    engine::WorkerPool pool(0);
    EXPECT_GE(pool.jobs(), 1);
    EXPECT_EQ(pool.jobs(), engine::WorkerPool::defaultJobs());
}

TEST(SweepGrid, DecodesIndicesSeedFastest)
{
    engine::SweepGrid grid;
    grid.addScenario("SC", [] { return workload::Scenario{}; })
        .addSystem("SYS", [] { return hw::SystemConfig{}; })
        .addScheduler("A", [](const engine::ParamMap&) {
            return std::unique_ptr<sim::Scheduler>();
        })
        .addScheduler("B", [](const engine::ParamMap&) {
            return std::unique_ptr<sim::Scheduler>();
        })
        .addParam("x", {0.0, 1.0, 2.0})
        .seeds({7, 9})
        .window(1e5);

    ASSERT_EQ(grid.size(), 2u * 3u * 2u);

    const auto p0 = grid.point(0);
    EXPECT_EQ(p0.scheduler, "A");
    EXPECT_EQ(engine::paramValue(p0.params, "x"), 0.0);
    EXPECT_EQ(p0.seed, 7u);
    EXPECT_EQ(p0.key(), "SC/SYS/A/x=0/seed=7");
    EXPECT_EQ(p0.cellKey(), "SC/SYS/A/x=0");

    // Seed varies fastest...
    EXPECT_EQ(grid.point(1).seed, 9u);
    EXPECT_EQ(engine::paramValue(grid.point(1).params, "x"), 0.0);
    // ...then the parameter axis...
    EXPECT_EQ(engine::paramValue(grid.point(2).params, "x"), 1.0);
    EXPECT_EQ(grid.point(2).seed, 7u);
    // ...then the scheduler axis.
    const auto last = grid.point(grid.size() - 1);
    EXPECT_EQ(last.scheduler, "B");
    EXPECT_EQ(engine::paramValue(last.params, "x"), 2.0);
    EXPECT_EQ(last.seed, 9u);
    EXPECT_EQ(last.windowUs, 1e5);
}

TEST(SweepGrid, UnknownParamNameThrows)
{
    const engine::ParamMap params = {{"alpha", 1.0}};
    EXPECT_EQ(engine::paramValue(params, "alpha"), 1.0);
    EXPECT_THROW(engine::paramValue(params, "beta"),
                 std::out_of_range);
}

TEST(SweepGrid, LinspaceHitsEndpoints)
{
    engine::SweepGrid grid;
    grid.linspaceParam("a", 0.0, 2.0, 9);
    const auto& axis = grid.paramAxes().front();
    ASSERT_EQ(axis.values.size(), 9u);
    EXPECT_DOUBLE_EQ(axis.values.front(), 0.0);
    EXPECT_DOUBLE_EQ(axis.values[4], 1.0);
    EXPECT_DOUBLE_EQ(axis.values.back(), 2.0);
}

TEST(AggregateSink, PercentileInterpolatesLinearly)
{
    using engine::AggregateSink;
    EXPECT_EQ(AggregateSink::percentile({}, 50.0), 0.0);
    EXPECT_DOUBLE_EQ(AggregateSink::percentile({5.0}, 99.0), 5.0);
    EXPECT_DOUBLE_EQ(
        AggregateSink::percentile({4.0, 1.0, 3.0, 2.0}, 50.0), 2.5);
    EXPECT_DOUBLE_EQ(
        AggregateSink::percentile({1.0, 2.0, 3.0, 4.0}, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(
        AggregateSink::percentile({1.0, 2.0, 3.0, 4.0}, 100.0), 4.0);

    std::vector<double> v;
    for (int i = 1; i <= 100; ++i)
        v.push_back(double(i));
    EXPECT_DOUBLE_EQ(AggregateSink::percentile(v, 50.0), 50.5);
    EXPECT_NEAR(AggregateSink::percentile(v, 99.0), 99.01, 1e-12);
}

namespace {

engine::RunRecord
syntheticRecord(const std::string& sched, uint64_t seed, double ux)
{
    engine::RunRecord r;
    r.scenario = "sc";
    r.system = "sys";
    r.scheduler = sched;
    r.seed = seed;
    r.uxCost = ux;
    r.energyMj = 10.0 * ux;
    r.totalFrames = 100;
    r.droppedFrames = seed; // distinct drop rates per seed
    r.dropRate = double(seed) / 100.0;
    return r;
}

} // anonymous namespace

TEST(AggregateSink, GroupsSeedsIntoCells)
{
    engine::AggregateSink agg;
    agg.write(syntheticRecord("A", 1, 1.0));
    agg.write(syntheticRecord("A", 2, 3.0));
    agg.write(syntheticRecord("A", 3, 2.0));
    agg.write(syntheticRecord("B", 1, 10.0));

    const auto cells = agg.cells();
    ASSERT_EQ(cells.size(), 2u);
    EXPECT_EQ(cells[0].key, "sc/sys/A");
    EXPECT_EQ(cells[0].runs, 3u);
    EXPECT_DOUBLE_EQ(cells[0].uxCost.mean, 2.0);
    EXPECT_DOUBLE_EQ(cells[0].uxCost.p50, 2.0);
    EXPECT_DOUBLE_EQ(cells[0].uxCost.min, 1.0);
    EXPECT_DOUBLE_EQ(cells[0].uxCost.max, 3.0);
    EXPECT_DOUBLE_EQ(cells[0].dropRate.mean, 0.02);
    EXPECT_EQ(cells[1].key, "sc/sys/B");
    EXPECT_EQ(cells[1].runs, 1u);
    EXPECT_DOUBLE_EQ(cells[1].uxCost.p99, 10.0);
}

TEST(CsvSink, EmitsHeaderAndRow)
{
    engine::RunRecord r = syntheticRecord("A", 11, 1.5);
    r.index = 4;
    r.params = {{"alpha", 0.25}};
    r.windowUs = 1e6;

    std::ostringstream out;
    {
        engine::CsvSink sink(out);
        sink.write(r);
    }
    EXPECT_EQ(out.str(),
              "index,scenario,system,scheduler,alpha,seed,window_us,"
              "ux_cost,dlv_rate,norm_energy,energy_mj,violation_frac,"
              "drop_rate,total_frames,violated_frames,dropped_frames,"
              "sched_invocations\n"
              "4,sc,sys,A,0.25,11,1000000,1.5,0,0,15,0,0.11,100,0,11,"
              "0\n");
}

TEST(JsonSink, EmitsWellFormedArray)
{
    std::ostringstream out;
    {
        engine::JsonSink sink(out);
        sink.write(syntheticRecord("A", 1, 1.0));
        sink.write(syntheticRecord("B", 2, 2.0));
        sink.close();
    }
    const std::string s = out.str();
    EXPECT_EQ(s.front(), '[');
    EXPECT_EQ(s.substr(s.size() - 2), "]\n");
    EXPECT_NE(s.find("\"scheduler\": \"A\""), std::string::npos);
    EXPECT_NE(s.find("\"scheduler\": \"B\""), std::string::npos);
    EXPECT_NE(s.find("\"ux_cost\": 2"), std::string::npos);
}

TEST(JsonSink, EmptyRunYieldsEmptyArray)
{
    std::ostringstream out;
    {
        engine::JsonSink sink(out);
        sink.close();
    }
    EXPECT_EQ(out.str(), "[]\n");
}

/** A small but real grid: 2 schedulers x 2 alphas x 2 seeds. */
engine::SweepGrid
smallGrid()
{
    engine::SweepGrid grid;
    grid.addScenario(workload::ScenarioPreset::VrGaming)
        .addSystem(hw::SystemPreset::Sys4k1Ws2Os)
        .addScheduler(runner::SchedKind::Fcfs)
        .addParam("alpha", {0.5, 1.5})
        .addParam("beta", {1.0})
        .seeds({1, 2})
        .window(5e4);
    const auto dream = engine::dreamFixedParamScheduler();
    grid.addScheduler(dream.name, dream.make);
    return grid;
}

TEST(Engine, ParallelRunsAreByteIdenticalToSerial)
{
    const auto grid = smallGrid();
    ASSERT_EQ(grid.size(), 8u);

    std::ostringstream csv1, csv8;
    engine::CsvSink sink1(csv1), sink8(csv8);
    const auto serial = engine::Engine({1}).run(grid, {&sink1});
    const auto parallel = engine::Engine({8}).run(grid, {&sink8});

    ASSERT_EQ(serial.size(), parallel.size());
    EXPECT_EQ(csv1.str(), csv8.str());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].key(), parallel[i].key());
        EXPECT_EQ(serial[i].uxCost, parallel[i].uxCost) << i;
        EXPECT_EQ(serial[i].energyMj, parallel[i].energyMj) << i;
        EXPECT_EQ(serial[i].totalFrames, parallel[i].totalFrames) << i;
    }
}

TEST(Engine, CostCacheOnAndOffAreByteIdentical)
{
    // The acceptance contract of the shared cost-table cache: it may
    // only change throughput, never a single output byte, at any
    // --jobs value.
    const auto grid = smallGrid();
    const bool saved = cost::CostTableCache::enabled();

    std::ostringstream on1, on4, off1;
    {
        engine::CsvSink sink_on1(on1), sink_on4(on4), sink_off1(off1);
        cost::CostTableCache::setEnabled(true);
        cost::CostTableCache::global().clear();
        engine::Engine({1}).run(grid, {&sink_on1});
        engine::Engine({4}).run(grid, {&sink_on4});
        cost::CostTableCache::setEnabled(false);
        engine::Engine({1}).run(grid, {&sink_off1});
    }
    cost::CostTableCache::setEnabled(saved);
    cost::CostTableCache::global().clear();

    EXPECT_EQ(on1.str(), off1.str());
    EXPECT_EQ(on1.str(), on4.str());
}

TEST(Engine, ParamGridMatchesSingleEvaluator)
{
    const auto sys_preset = hw::SystemPreset::Sys4k1Ws2Os;
    const auto sc_preset = workload::ScenarioPreset::VrGaming;
    const auto grid =
        engine::paramSpaceGrid(sys_preset, sc_preset, 2);
    const auto records = engine::Engine({2}).run(grid);
    ASSERT_EQ(records.size(), 4u);

    const auto system = hw::makeSystem(sys_preset);
    const auto scenario = workload::makeScenario(sc_preset);
    const auto eval = engine::makeEvaluator(system, scenario);
    for (const auto& r : records) {
        const double a = engine::paramValue(r.params, "alpha");
        const double b = engine::paramValue(r.params, "beta");
        EXPECT_DOUBLE_EQ(r.uxCost, eval(a, b)) << r.key();
    }
}

TEST(Engine, FilteredRunSelectsMatchingPointsDeterministically)
{
    const auto grid = smallGrid();
    const auto filter = [](const engine::SweepGrid::Point& p) {
        return p.key().find("seed=1") != std::string::npos;
    };

    std::ostringstream csv1, csv4;
    engine::CsvSink sink1(csv1), sink4(csv4);
    const auto serial =
        engine::Engine({1}).run(grid, {&sink1}, filter);
    const auto parallel =
        engine::Engine({4}).run(grid, {&sink4}, filter);

    ASSERT_EQ(serial.size(), 4u); // half of the 8 points
    EXPECT_EQ(csv1.str(), csv4.str());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].seed, 1u);
        EXPECT_EQ(serial[i].key(), parallel[i].key());
        EXPECT_EQ(serial[i].uxCost, parallel[i].uxCost);
    }
    // Original grid indices are preserved and ascending.
    for (size_t i = 1; i < serial.size(); ++i)
        EXPECT_GT(serial[i].index, serial[i - 1].index);

    // A null filter matches the unfiltered overload.
    const auto all =
        engine::Engine({1}).run(grid, {}, engine::PointFilter{});
    EXPECT_EQ(all.size(), grid.size());
}

TEST(ShardSpec, ParsesValidSpecsAndRejectsMalformedOnes)
{
    engine::ShardSpec s;
    ASSERT_TRUE(engine::ShardSpec::parse("2/4", &s));
    EXPECT_EQ(s.index, 2);
    EXPECT_EQ(s.count, 4);
    EXPECT_TRUE(s.active());
    EXPECT_EQ(s.toString(), "2/4");

    ASSERT_TRUE(engine::ShardSpec::parse("1/1", &s));
    EXPECT_FALSE(s.active());

    for (const char* bad :
         {"", "/", "3", "0/4", "5/4", "-1/4", "1/0", "a/4", "1/b",
          "1/4x", "1//4",
          // Out of int range: must be rejected, not wrapped.
          "4294967297/4294967297", "1/99999999999999999999"}) {
        engine::ShardSpec keep{7, 9};
        EXPECT_FALSE(engine::ShardSpec::parse(bad, &keep)) << bad;
        EXPECT_EQ(keep.index, 7) << bad; // untouched on failure
    }
}

TEST(ShardSpec, RangesTileTheSequenceExactly)
{
    for (const size_t total : {0u, 1u, 3u, 7u, 8u, 100u}) {
        for (const int n : {1, 2, 3, 4, 7, 10}) {
            size_t covered = 0;
            size_t prev_end = 0;
            for (int k = 1; k <= n; ++k) {
                const engine::ShardSpec s{k, n};
                const auto r = s.range(total);
                EXPECT_EQ(r.first, prev_end); // contiguous
                EXPECT_LE(r.second, total);
                prev_end = r.second;
                covered += r.second - r.first;
                for (size_t p = r.first; p < r.second; ++p)
                    EXPECT_TRUE(s.contains(p, total));
            }
            EXPECT_EQ(prev_end, total);   // covering
            EXPECT_EQ(covered, total);    // disjoint
        }
    }
    // More shards than points: some shards are empty, none gets
    // more than one point.
    for (int k = 1; k <= 4; ++k) {
        const auto r = engine::ShardSpec{k, 4}.range(2);
        EXPECT_LE(r.second - r.first, 1u) << k;
    }
    EXPECT_EQ((engine::ShardSpec{1, 4}.range(2).second), 0u);
}

TEST(Engine, ShardedRunsPartitionTheGrid)
{
    const auto grid = smallGrid();
    const auto full = engine::Engine({1}).run(grid);
    ASSERT_EQ(full.size(), 8u);

    std::vector<engine::RunRecord> stitched;
    for (int k = 1; k <= 3; ++k) {
        const auto part = engine::Engine({2}).run(
            grid, {}, engine::PointFilter{},
            engine::ShardSpec{k, 3});
        stitched.insert(stitched.end(), part.begin(), part.end());
    }
    ASSERT_EQ(stitched.size(), full.size());
    for (size_t i = 0; i < full.size(); ++i) {
        EXPECT_EQ(stitched[i].key(), full[i].key());
        EXPECT_EQ(stitched[i].uxCost, full[i].uxCost) << i;
        EXPECT_EQ(stitched[i].index, full[i].index) << i;
    }

    EXPECT_THROW(engine::Engine({1}).run(grid, {},
                                         engine::PointFilter{},
                                         engine::ShardSpec{5, 4}),
                 std::invalid_argument);
}

TEST(Engine, ShardComposesWithPointFilter)
{
    const auto grid = smallGrid();
    const auto filter = [](const engine::SweepGrid::Point& p) {
        return p.key().find("seed=1") != std::string::npos;
    };
    const auto filtered = engine::Engine({1}).run(grid, {}, filter);
    ASSERT_EQ(filtered.size(), 4u);

    // The shards partition the FILTERED sequence, not the grid.
    std::vector<engine::RunRecord> stitched;
    for (int k = 1; k <= 2; ++k) {
        const auto part = engine::Engine({1}).run(
            grid, {}, filter, engine::ShardSpec{k, 2});
        EXPECT_EQ(part.size(), 2u);
        stitched.insert(stitched.end(), part.begin(), part.end());
    }
    ASSERT_EQ(stitched.size(), filtered.size());
    for (size_t i = 0; i < filtered.size(); ++i)
        EXPECT_EQ(stitched[i].key(), filtered[i].key());

    // A shard of a tiny filtered set can be empty.
    const auto empty = engine::Engine({1}).run(
        grid, {}, filter, engine::ShardSpec{9, 9});
    EXPECT_EQ(empty.size(), 1u); // 4 points, 9 shards: last has one
    const auto mid = engine::Engine({1}).run(
        grid, {}, filter, engine::ShardSpec{2, 9});
    EXPECT_TRUE(mid.empty());
}

TEST(ChunkSpec, ParsesValidSpecsAndRejectsMalformedOnes)
{
    engine::ChunkSpec c;
    ASSERT_TRUE(engine::ChunkSpec::parse("3:7", &c));
    EXPECT_EQ(c.begin, 3u);
    EXPECT_EQ(c.end, 7u);
    EXPECT_TRUE(c.active());
    EXPECT_EQ(c.toString(), "3:7");

    ASSERT_TRUE(engine::ChunkSpec::parse("5:5", &c));
    EXPECT_EQ(c.begin, c.end); // empty chunks are valid

    ASSERT_TRUE(engine::ChunkSpec::parse("4:", &c));
    EXPECT_EQ(c.begin, 4u);
    EXPECT_EQ(c.end, engine::ChunkSpec::npos); // open end
    EXPECT_EQ(c.toString(), "4:");

    ASSERT_TRUE(engine::ChunkSpec::parse("0:", &c));
    EXPECT_FALSE(c.active()); // the whole ordering

    for (const char* bad :
         {"", ":", "3", ":7", "7:3", "-1:4", "1:b", "a:4", "1:4x",
          "1.5:4", " 1:4",
          // Overflow must be rejected, not saturated to npos.
          "99999999999999999999:4", "1:99999999999999999999",
          "99999999999999999999:99999999999999999998"}) {
        engine::ChunkSpec keep{7, 9};
        EXPECT_FALSE(engine::ChunkSpec::parse(bad, &keep)) << bad;
        EXPECT_EQ(keep.begin, 7u) << bad; // untouched on failure
    }
}

TEST(ChunkSpec, RangeClampsAndSliceRebasesGlobally)
{
    const engine::ChunkSpec c{3, 7};
    EXPECT_EQ(c.range(100), (std::pair<size_t, size_t>{3, 7}));
    EXPECT_EQ(c.range(5), (std::pair<size_t, size_t>{3, 5}));
    EXPECT_EQ(c.range(2), (std::pair<size_t, size_t>{2, 2}));
    EXPECT_TRUE(c.contains(3, 100));
    EXPECT_FALSE(c.contains(7, 100));

    const engine::ChunkSpec open{3, engine::ChunkSpec::npos};
    EXPECT_EQ(open.range(10), (std::pair<size_t, size_t>{3, 10}));

    // slice() rebases a global range onto per-grid windows: the
    // slices over consecutive windows tile the global chunk, the
    // multi-grid invariant bench_main's cursor relies on.
    const engine::ChunkSpec global{5, 15};
    const auto a = global.slice(0, 10);  // window [0, 10)
    const auto b = global.slice(10, 10); // window [10, 20)
    const auto d = global.slice(20, 10); // window [20, 30)
    EXPECT_EQ(a.begin, 5u);
    EXPECT_EQ(a.end, 10u);
    EXPECT_EQ(b.begin, 0u);
    EXPECT_EQ(b.end, 5u);
    EXPECT_EQ(d.begin, d.end); // past the chunk: empty
    const size_t sliced = (a.end - a.begin) + (b.end - b.begin) +
                          (d.end - d.begin);
    EXPECT_EQ(sliced, global.end - global.begin);

    // An open-ended chunk covers every later window fully.
    const auto tail = open.slice(10, 4);
    EXPECT_EQ(tail.begin, 0u);
    EXPECT_EQ(tail.end, 4u);
}

TEST(Engine, ChunkedRunsPartitionTheGrid)
{
    const auto grid = smallGrid();
    const auto full = engine::Engine({1}).run(grid);
    ASSERT_EQ(full.size(), 8u);

    // Deliberately uneven chunks (the orchestrator hands out
    // whatever tiles the ordering) stitch back into the full run.
    std::vector<engine::RunRecord> stitched;
    for (const auto& c : {engine::ChunkSpec{0, 3},
                          engine::ChunkSpec{3, 4},
                          engine::ChunkSpec{4, 8}}) {
        const auto part = engine::Engine({2}).run(
            grid, {}, engine::PointFilter{}, c);
        stitched.insert(stitched.end(), part.begin(), part.end());
    }
    ASSERT_EQ(stitched.size(), full.size());
    for (size_t i = 0; i < full.size(); ++i) {
        EXPECT_EQ(stitched[i].key(), full[i].key());
        EXPECT_EQ(stitched[i].uxCost, full[i].uxCost) << i;
        EXPECT_EQ(stitched[i].index, full[i].index) << i;
    }

    // Ranges beyond the grid clamp to empty; invalid specs throw.
    EXPECT_TRUE(engine::Engine({1})
                    .run(grid, {}, engine::PointFilter{},
                         engine::ChunkSpec{20, 30})
                    .empty());
    EXPECT_THROW(engine::Engine({1}).run(grid, {},
                                         engine::PointFilter{},
                                         engine::ChunkSpec{5, 2}),
                 std::invalid_argument);
}

TEST(Engine, ChunkComposesWithPointFilter)
{
    const auto grid = smallGrid();
    const auto filter = [](const engine::SweepGrid::Point& p) {
        return p.key().find("seed=1") != std::string::npos;
    };
    const auto filtered = engine::Engine({1}).run(grid, {}, filter);
    ASSERT_EQ(filtered.size(), 4u);

    // Chunks address positions of the FILTERED sequence.
    const auto head = engine::Engine({1}).run(
        grid, {}, filter, engine::ChunkSpec{0, 3});
    const auto tail = engine::Engine({1}).run(
        grid, {}, filter, engine::ChunkSpec{3, 4});
    ASSERT_EQ(head.size() + tail.size(), filtered.size());
    for (size_t i = 0; i < head.size(); ++i)
        EXPECT_EQ(head[i].key(), filtered[i].key());
    for (size_t i = 0; i < tail.size(); ++i)
        EXPECT_EQ(tail[i].key(), filtered[3 + i].key());

    // An all-rejecting filter leaves every chunk empty.
    const auto none = engine::Engine({1}).run(
        grid, {}, [](const engine::SweepGrid::Point&) {
            return false;
        },
        engine::ChunkSpec{0, 4});
    EXPECT_TRUE(none.empty());
}

TEST(ReindexSink, ShiftsIndicesAndToleratesNullInner)
{
    std::ostringstream out;
    engine::CsvSink csv(out);
    engine::ReindexSink shifted(&csv, 100);
    engine::RunRecord r = syntheticRecord("A", 11, 1.5);
    r.index = 4;
    shifted.write(r);
    csv.close();
    EXPECT_NE(out.str().find("\n104,sc,sys,A,"), std::string::npos);

    engine::ReindexSink null_sink(nullptr, 5);
    null_sink.write(r); // must not crash
}

TEST(Engine, SupernetRunsCarryVariantShareBreakdown)
{
    // VR_Gaming carries the OFA Supernet; DREAM-Full may switch
    // variants, and even without switches the share columns exist.
    engine::SweepGrid grid;
    grid.addScenario(workload::ScenarioPreset::VrGaming)
        .addSystem(hw::SystemPreset::Sys4k1Ws2Os)
        .addScheduler(runner::SchedKind::DreamFull)
        .seeds({11})
        .window(1e5);
    const auto records = engine::Engine({1}).run(grid);
    ASSERT_EQ(records.size(), 1u);
    const auto& r = records[0];
    ASSERT_FALSE(r.breakdown.empty());
    double share_sum = 0.0;
    for (const auto& kv : r.breakdown) {
        EXPECT_NE(kv.first.find("_share"), std::string::npos);
        EXPECT_GE(kv.second, 0.0);
        EXPECT_LE(kv.second, 1.0);
        share_sum += kv.second;
    }
    EXPECT_NEAR(share_sum, 1.0, 1e-9);
    EXPECT_TRUE(std::isnan(r.breakdownValue("no_such_column")));
}

TEST(CsvSink, BreakdownColumnsAreTheUnionOverAllRecords)
{
    engine::RunRecord with = syntheticRecord("A", 1, 1.0);
    with.breakdown = {{"net_v0_share", 0.75}, {"net_v1_share", 0.25}};
    engine::RunRecord without = syntheticRecord("B", 2, 2.0);

    std::ostringstream out;
    {
        engine::CsvSink sink(out);
        // The record lacking breakdown columns comes FIRST: the
        // header must still carry the union (a grid whose first
        // point has no Supernet must not drop later points' shares).
        sink.write(without);
        sink.write(with);
    }
    const std::string s = out.str();
    EXPECT_NE(s.find(",net_v0_share,net_v1_share\n"),
              std::string::npos);
    EXPECT_NE(s.find(",0.75,0.25\n"), std::string::npos);
    EXPECT_NE(s.find(",,\n"), std::string::npos);
    // Every row has the same column count.
    size_t header_commas = 0, row_commas = std::string::npos;
    std::istringstream lines(s);
    std::string line;
    std::getline(lines, line);
    header_commas = size_t(std::count(line.begin(), line.end(), ','));
    while (std::getline(lines, line)) {
        row_commas = size_t(std::count(line.begin(), line.end(), ','));
        EXPECT_EQ(row_commas, header_commas) << line;
    }
}

TEST(AggregateSink, SummarisesBreakdownColumnsPerCell)
{
    engine::AggregateSink agg;
    engine::RunRecord a = syntheticRecord("A", 1, 1.0);
    a.breakdown = {{"net_v0_share", 0.8}};
    engine::RunRecord b = syntheticRecord("A", 2, 2.0);
    b.breakdown = {{"net_v0_share", 0.4}};
    agg.write(a);
    agg.write(b);
    const auto cells = agg.cells();
    ASSERT_EQ(cells.size(), 1u);
    const auto* summary = cells[0].breakdownSummary("net_v0_share");
    ASSERT_NE(summary, nullptr);
    EXPECT_DOUBLE_EQ(summary->mean, 0.6);
    EXPECT_DOUBLE_EQ(summary->min, 0.4);
    EXPECT_DOUBLE_EQ(summary->max, 0.8);
    EXPECT_EQ(cells[0].breakdownSummary("nope"), nullptr);
}

TEST(ReportHelpers, GroupFindAndRatioCells)
{
    engine::AggregateSink agg;
    const auto rec = [](const char* sys, const char* sched,
                        double ux, double viol) {
        engine::RunRecord r;
        r.scenario = "sc";
        r.system = sys;
        r.scheduler = sched;
        r.seed = 11;
        r.uxCost = ux;
        r.violationFraction = viol;
        return r;
    };
    agg.write(rec("S1", "Base", 2.0, 0.5));
    agg.write(rec("S1", "New", 1.0, 0.2));
    agg.write(rec("S2", "Base", 4.0, 0.8));
    agg.write(rec("S2", "New", 3.0, 0.4));
    const auto cells = agg.cells();

    const auto groups = engine::groupCells(
        cells, [](const engine::AggregateSink::Cell& c) {
            return c.system;
        });
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(groups[0].key, "S1");
    EXPECT_EQ(groups[0].cells.size(), 2u);
    EXPECT_EQ(groups[1].key, "S2");

    const auto* found = engine::findCell(cells, "sc", "S2", "New");
    ASSERT_NE(found, nullptr);
    EXPECT_DOUBLE_EQ(found->uxCost.mean, 3.0);
    EXPECT_EQ(engine::findCell(cells, "sc", "S3", "New"), nullptr);

    const auto ratios = engine::schedulerRatios(cells, "New", "Base");
    ASSERT_EQ(ratios.size(), 2u);
    EXPECT_EQ(ratios[0].system, "S1");
    EXPECT_DOUBLE_EQ(ratios[0].ratio, 0.5);
    EXPECT_DOUBLE_EQ(ratios[0].reduction(), 0.5);
    EXPECT_DOUBLE_EQ(ratios[1].ratio, 0.75);

    const auto viol_ratios = engine::schedulerRatios(
        cells, "New", "Base",
        [](const engine::AggregateSink::Cell& c) {
            return c.violationFraction.mean;
        });
    ASSERT_EQ(viol_ratios.size(), 2u);
    EXPECT_DOUBLE_EQ(viol_ratios[0].ratio, 0.4);
}

TEST(SweepGrid, GeneratedScenarioAxisIsDeterministic)
{
    workload::ScenarioGenSpec spec;
    spec.minTasks = 2;
    spec.maxTasks = 3;

    const auto build = [&spec]() {
        engine::SweepGrid grid;
        grid.addGeneratedScenarios(spec, 3, 7)
            .addSystem(hw::SystemPreset::Sys4k1Ws2Os)
            .addScheduler(runner::SchedKind::Fcfs)
            .seeds({11})
            .window(5e4);
        return grid;
    };

    const auto grid = build();
    ASSERT_EQ(grid.size(), 3u);
    EXPECT_EQ(grid.point(0).scenario, "Gen7");
    EXPECT_EQ(grid.point(2).scenario, "Gen9");

    // Two independently built grids simulate identically.
    const auto r1 = engine::Engine({1}).run(build());
    const auto r2 = engine::Engine({4}).run(build());
    ASSERT_EQ(r1.size(), r2.size());
    for (size_t i = 0; i < r1.size(); ++i) {
        EXPECT_EQ(r1[i].key(), r2[i].key());
        EXPECT_EQ(r1[i].uxCost, r2[i].uxCost) << i;
        EXPECT_EQ(r1[i].totalFrames, r2[i].totalFrames) << i;
    }
}

TEST(OnlineTuner, BatchEvaluatorCompletesRoundsSynchronously)
{
    // AR_Call: the lightest preset — each candidate evaluation forks
    // a full search-window simulation, so keep the workload small.
    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k1Ws2Os);
    const auto scenario =
        workload::makeScenario(workload::ScenarioPreset::ArCall);

    const auto run = [&](int jobs) {
        engine::WorkerPool pool(jobs);
        core::DreamScheduler sched(core::DreamConfig::full());
        engine::attachBatchTuner(sched, system, scenario, pool);
        const auto r =
            runner::runOnce(system, scenario, sched, 1e5, 11);
        // All rounds completed inside the first update: the radius
        // shrank below the threshold without live trial windows.
        EXPECT_GT(sched.tuner().completedSteps(), 0);
        EXPECT_FALSE(sched.tuner().tuning());
        return r.uxCost;
    };

    // Concurrent candidate evaluation is bit-identical to serial.
    EXPECT_EQ(run(1), run(4));
}

TEST(ParamSearch, BatchedOptimizeMatchesSerial)
{
    const core::CostFn cost = [](double a, double b) {
        return (a - 0.7) * (a - 0.7) + (b - 1.3) * (b - 1.3);
    };
    engine::WorkerPool pool(4);
    const core::BatchCostFn batch =
        [&](const std::vector<std::pair<double, double>>& pts) {
            std::vector<double> out(pts.size());
            pool.parallelFor(pts.size(), [&](size_t i) {
                out[i] = cost(pts[i].first, pts[i].second);
            });
            return out;
        };

    core::ParamSearch search(0.5, 0.05, 0.0, 2.0);
    const auto serial = search.optimize(cost, 0.2, 1.8);
    const auto batched = search.optimize(batch, 0.2, 1.8);

    EXPECT_EQ(serial.alpha, batched.alpha);
    EXPECT_EQ(serial.beta, batched.beta);
    EXPECT_EQ(serial.cost, batched.cost);
    EXPECT_EQ(serial.evaluations, batched.evaluations);
    ASSERT_EQ(serial.trajectory.size(), batched.trajectory.size());
    for (size_t i = 0; i < serial.trajectory.size(); ++i) {
        EXPECT_EQ(serial.trajectory[i].alpha,
                  batched.trajectory[i].alpha);
        EXPECT_EQ(serial.trajectory[i].cost,
                  batched.trajectory[i].cost);
    }
}

TEST(Engine, TraceFileNameSanitizesTheKey)
{
    engine::SweepGrid grid;
    grid.addScenario(workload::ScenarioPreset::ArCall);
    grid.addSystem(hw::SystemPreset::Sys4k1Ws2Os);
    grid.addScheduler(runner::SchedKind::Fcfs);
    grid.window(1e5);
    const auto point = grid.point(0);
    const std::string name = engine::traceFileName(point);
    EXPECT_EQ(name.find('/'), std::string::npos);
    EXPECT_NE(name.find("AR_Call"), std::string::npos);
    EXPECT_NE(name.find("seed=11"), std::string::npos);
    EXPECT_EQ(name.substr(name.size() - 10), ".trace.csv");
}

TEST(Engine, RecordReplayRoundTripThroughTheGrid)
{
    // Record: a 2-scheduler sweep writes one trace per grid point.
    const std::string dir = ::testing::TempDir() +
                            "dream_engine_trace_roundtrip";
    std::filesystem::remove_all(dir);

    engine::SweepGrid record;
    record.addScenario(workload::ScenarioPreset::ArCall);
    record.addSystem(hw::SystemPreset::Sys4k2Ws);
    record.addScheduler(runner::SchedKind::Fcfs);
    record.addScheduler(runner::SchedKind::StaticFcfs);
    record.seeds({11});
    record.window(2e5);

    engine::EngineOptions ropts;
    ropts.jobs = 2;
    ropts.traceDir = dir;
    const auto recorded = engine::Engine(ropts).run(record);
    ASSERT_EQ(recorded.size(), 2u);

    // Replay: every recorded point, rebuilt from its trace file via
    // the grid's trace axis, reproduces the recorded metrics exactly.
    for (const auto& r : recorded) {
        const auto point = record.point(r.index);
        const auto trace =
            std::make_shared<const workload::FrameTrace>(
                runner::readFrameTraceCsv(dir + '/' +
                                          engine::traceFileName(
                                              point)));
        EXPECT_EQ(trace->metaValue("scenario"), r.scenario);
        EXPECT_EQ(trace->metaValue("scheduler"), r.scheduler);
        EXPECT_EQ(trace->metaValue("seed"),
                  std::to_string(r.seed));

        engine::SweepGrid replay;
        replay.addTraceReplay(
            {r.scenario,
             []() {
                 return workload::makeScenario(
                     workload::ScenarioPreset::ArCall);
             },
             trace});
        replay.addSystem(hw::SystemPreset::Sys4k2Ws);
        replay.addScheduler(r.scheduler == "FCFS"
                                ? runner::SchedKind::Fcfs
                                : runner::SchedKind::StaticFcfs);
        replay.seeds({r.seed});
        replay.window(r.windowUs);

        const auto replayed = engine::Engine({1}).run(replay);
        ASSERT_EQ(replayed.size(), 1u);
        const auto& p = replayed[0];
        EXPECT_EQ(p.key(), r.key());
        EXPECT_EQ(p.uxCost, r.uxCost);
        EXPECT_EQ(p.dlvRate, r.dlvRate);
        EXPECT_EQ(p.normEnergy, r.normEnergy);
        EXPECT_EQ(p.energyMj, r.energyMj);
        EXPECT_EQ(p.violationFraction, r.violationFraction);
        EXPECT_EQ(p.dropRate, r.dropRate);
        EXPECT_EQ(p.totalFrames, r.totalFrames);
        EXPECT_EQ(p.violatedFrames, r.violatedFrames);
        EXPECT_EQ(p.droppedFrames, r.droppedFrames);
        EXPECT_EQ(p.schedulerInvocations, r.schedulerInvocations);
    }
    std::filesystem::remove_all(dir);
}

TEST(Engine, TraceAxisGivesEverySchedulerIdenticalLoad)
{
    // One recorded trace, swept across several schedulers: each grid
    // point must face the same total workload (frames and deadlines
    // are fixed by the trace, not re-derived per scheduler).
    const auto scenario_factory = []() {
        return workload::makeScenario(
            workload::ScenarioPreset::ArCall);
    };
    const auto point_grid = [&]() {
        engine::SweepGrid g;
        g.addScenario("AR_Call", scenario_factory);
        g.addSystem(hw::SystemPreset::Sys4k2Ws);
        g.addScheduler(runner::SchedKind::Fcfs);
        g.seeds({11});
        g.window(2e5);
        return g;
    }();
    const std::string dir =
        ::testing::TempDir() + "dream_engine_trace_axis";
    std::filesystem::remove_all(dir);
    engine::EngineOptions ropts;
    ropts.traceDir = dir;
    engine::Engine(ropts).run(point_grid);
    const auto trace = std::make_shared<const workload::FrameTrace>(
        runner::readFrameTraceCsv(
            dir + '/' +
            engine::traceFileName(point_grid.point(0))));

    engine::SweepGrid sweep;
    sweep.addTraceReplays(
        {{"AR_Call", scenario_factory, trace}});
    sweep.addSystem(hw::SystemPreset::Sys4k2Ws);
    sweep.addScheduler(runner::SchedKind::Fcfs);
    sweep.addScheduler(runner::SchedKind::DreamFull);
    sweep.addScheduler(runner::SchedKind::Planaria);
    sweep.seeds({11});
    sweep.window(2e5);

    uint64_t in_window = 0;
    for (const auto& fr : trace->frames)
        in_window += fr.inWindow ? 1 : 0;
    const auto records = engine::Engine({2}).run(sweep);
    ASSERT_EQ(records.size(), 3u);
    for (const auto& r : records)
        EXPECT_EQ(r.totalFrames, in_window) << r.key();
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace dream
