/**
 * @file
 * End-to-end smoke test: every scheduler completes a short window of
 * every scenario on a representative system without tripping any
 * simulator invariant.
 */

#include <gtest/gtest.h>

#include "runner/experiment.h"

namespace dream {
namespace {

TEST(Smoke, EverySchedulerRunsEveryScenario)
{
    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k1Ws2Os);
    for (const auto preset : workload::allScenarioPresets()) {
        const auto scenario = workload::makeScenario(preset);
        for (const auto kind :
             {runner::SchedKind::Fcfs, runner::SchedKind::StaticFcfs,
              runner::SchedKind::Veltair, runner::SchedKind::Planaria,
              runner::SchedKind::DreamFull}) {
            auto sched = runner::makeScheduler(kind);
            const auto r = runner::runOnce(system, scenario, *sched,
                                           5e5, 1);
            EXPECT_GT(r.stats.totalFrames(), 0u)
                << toString(preset) << " / " << sched->name();
            EXPECT_GE(r.uxCost, 0.0);
        }
    }
}

} // namespace
} // namespace dream
