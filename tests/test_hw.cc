/** @file Unit tests for the hardware configuration module. */

#include <gtest/gtest.h>

#include "hw/system.h"

namespace dream {
namespace {

TEST(Dataflow, Names)
{
    EXPECT_EQ(toString(hw::Dataflow::WeightStationary), "WS");
    EXPECT_EQ(toString(hw::Dataflow::OutputStationary), "OS");
}

TEST(Accelerator, SliceMath)
{
    hw::AcceleratorConfig acc;
    acc.numPes = 2048;
    acc.numSlices = 4;
    EXPECT_EQ(acc.pesForSlices(4), 2048u);
    EXPECT_EQ(acc.pesForSlices(2), 1024u);
    EXPECT_EQ(acc.pesForSlices(1), 512u);
}

TEST(Accelerator, BandwidthScalesWithSlices)
{
    hw::AcceleratorConfig acc;
    acc.dramGbps = 90.0;
    acc.numSlices = 4;
    const double full = acc.bandwidthBytesPerUsForSlices(4);
    EXPECT_DOUBLE_EQ(full, 90e3);
    EXPECT_DOUBLE_EQ(acc.bandwidthBytesPerUsForSlices(1), full / 4.0);
}

TEST(Accelerator, CyclesToUs)
{
    hw::AcceleratorConfig acc;
    acc.clockMhz = 700.0;
    EXPECT_DOUBLE_EQ(acc.cyclesToUs(700.0), 1.0);
}

TEST(System, Table2PresetCount)
{
    EXPECT_EQ(hw::allSystemPresets().size(), 8u);
    EXPECT_EQ(hw::systemPresets4k().size(), 4u);
    EXPECT_EQ(hw::heterogeneousPresets().size(), 4u);
    EXPECT_EQ(hw::homogeneousPresets().size(), 4u);
}

struct PresetCase {
    hw::SystemPreset preset;
    uint32_t totalPes;
    size_t accels;
    bool homogeneous;
};

class SystemPresetTest : public ::testing::TestWithParam<PresetCase> {};

TEST_P(SystemPresetTest, MatchesTable2)
{
    const auto& pc = GetParam();
    const auto sys = hw::makeSystem(pc.preset);
    EXPECT_EQ(sys.totalPes(), pc.totalPes);
    EXPECT_EQ(sys.size(), pc.accels);
    EXPECT_EQ(sys.homogeneous(), pc.homogeneous);
    EXPECT_EQ(sys.name, toString(pc.preset));
    for (const auto& acc : sys.accelerators) {
        EXPECT_EQ(acc.sramBytes, 8ull * 1024 * 1024);
        EXPECT_DOUBLE_EQ(acc.dramGbps, 90.0);
        EXPECT_DOUBLE_EQ(acc.clockMhz, 700.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Table2, SystemPresetTest,
    ::testing::Values(
        PresetCase{hw::SystemPreset::Sys4k2Ws, 4096, 2, true},
        PresetCase{hw::SystemPreset::Sys4k2Os, 4096, 2, true},
        PresetCase{hw::SystemPreset::Sys4k1Ws2Os, 4096, 3, false},
        PresetCase{hw::SystemPreset::Sys4k1Os2Ws, 4096, 3, false},
        PresetCase{hw::SystemPreset::Sys8k2Ws, 8192, 2, true},
        PresetCase{hw::SystemPreset::Sys8k2Os, 8192, 2, true},
        PresetCase{hw::SystemPreset::Sys8k1Ws2Os, 8192, 3, false},
        PresetCase{hw::SystemPreset::Sys8k1Os2Ws, 8192, 3, false}));

TEST(System, HeterogeneousPresetsMixDataflows)
{
    for (const auto preset : hw::heterogeneousPresets())
        EXPECT_FALSE(hw::makeSystem(preset).homogeneous());
    for (const auto preset : hw::homogeneousPresets())
        EXPECT_TRUE(hw::makeSystem(preset).homogeneous());
}

} // namespace
} // namespace dream
