/** @file Tests for the memoised cost table. */

#include <gtest/gtest.h>

#include "costmodel/cost_table.h"
#include "costmodel/layer_cost.h"
#include "hw/system.h"
#include "models/zoo.h"

namespace dream {
namespace {

TEST(CostTable, MatchesDirectEstimates)
{
    const auto sys = hw::makeSystem(hw::SystemPreset::Sys4k1Ws2Os);
    cost::CostTable table(sys);
    const auto l = models::conv("c", 56, 56, 64, 128, 3, 1);
    for (size_t a = 0; a < sys.size(); ++a) {
        for (uint32_t s = 1; s <= sys.accelerators[a].numSlices; ++s) {
            const auto direct =
                cost::estimateLayer(l, sys.accelerators[a], s);
            const auto& cached = table.cost(l, a, s);
            EXPECT_DOUBLE_EQ(cached.latencyUs, direct.latencyUs);
            EXPECT_DOUBLE_EQ(cached.energyMj, direct.energyMj);
        }
    }
}

TEST(CostTable, AggregatesAreConsistent)
{
    const auto sys = hw::makeSystem(hw::SystemPreset::Sys4k1Os2Ws);
    cost::CostTable table(sys);
    const auto l = models::fc("fc", 1024, 4096);
    double sum = 0.0, min_lat = 1e300, sum_e = 0.0, max_e = 0.0;
    for (size_t a = 0; a < sys.size(); ++a) {
        const auto& c = table.cost(l, a);
        sum += c.latencyUs;
        min_lat = std::min(min_lat, c.latencyUs);
        sum_e += c.energyMj;
        max_e = std::max(max_e, c.energyMj);
    }
    EXPECT_DOUBLE_EQ(table.sumLatencyUs(l), sum);
    EXPECT_DOUBLE_EQ(table.avgLatencyUs(l), sum / double(sys.size()));
    EXPECT_DOUBLE_EQ(table.minLatencyUs(l), min_lat);
    EXPECT_DOUBLE_EQ(table.sumEnergyMj(l), sum_e);
    EXPECT_DOUBLE_EQ(table.maxEnergyMj(l), max_e);
}

TEST(CostTable, KeyDistinguishesShapes)
{
    const auto a = models::conv("a", 56, 56, 64, 128, 3, 1);
    auto b = a;
    b.stride = 2;
    EXPECT_FALSE(cost::makeKey(a) == cost::makeKey(b));
    auto c = a;
    c.name = "renamed"; // name is not part of the key
    EXPECT_TRUE(cost::makeKey(a) == cost::makeKey(c));
}

TEST(CostTable, AddModelCoversVariants)
{
    const auto sys = hw::makeSystem(hw::SystemPreset::Sys4k2Ws);
    cost::CostTable table(sys);
    const auto m = models::zoo::ofaSupernet();
    table.addModel(m);
    // Lookups for every variant path must be servable.
    for (size_t v = 0; v <= m.variants.size(); ++v) {
        for (const auto& l : m.variantPath(v)) {
            EXPECT_GT(table.cost(l, 0).latencyUs, 0.0);
        }
    }
}

} // namespace
} // namespace dream
