/** @file Unit tests for the MapScore engine (Algorithm 1). */

#include <cmath>

#include <gtest/gtest.h>

#include "core/mapscore.h"
#include "test_util.h"

namespace dream {
namespace {

TEST(MapScore, UrgencyGrowsAsSlackShrinks)
{
    test::ContextBuilder cb;
    const auto t = cb.addTask(test::toyModel());
    auto* relaxed = cb.addRequest(t, 0.0, 50000.0);
    auto* urgent = cb.addRequest(t, 0.0, 5000.0);
    auto& ctx = cb.context(0.0);
    core::MapScoreEngine engine(1.0, 1.0);
    const auto s_relaxed = engine.score(ctx, *relaxed, 0);
    const auto s_urgent = engine.score(ctx, *urgent, 0);
    EXPECT_GT(s_urgent.urgency, s_relaxed.urgency);
}

TEST(MapScore, UrgencySaturatesWhenOverdue)
{
    test::ContextBuilder cb;
    const auto t = cb.addTask(test::toyModel());
    auto* overdue = cb.addRequest(t, 0.0, 100.0);
    auto& ctx = cb.context(10000.0); // way past the deadline
    core::MapScoreEngine engine(1.0, 1.0);
    const auto s = engine.score(ctx, *overdue, 0);
    EXPECT_TRUE(std::isfinite(s.urgency));
    EXPECT_GT(s.urgency, 0.0);
}

TEST(MapScore, LatencyPreferenceFavoursFasterAccelerator)
{
    test::ContextBuilder cb;
    models::Model m;
    m.name = "fc-heavy";
    m.layers.push_back(models::rnn("lstm", 2048, 4096, 16));
    const auto t = cb.addTask(std::move(m));
    auto* req = cb.addRequest(t, 0.0, 1e5);
    auto& ctx = cb.context(0.0);
    core::MapScoreEngine engine(1.0, 1.0);
    // Accelerator 0 is WS (faster for RNN), 1 is OS.
    const auto s_ws = engine.score(ctx, *req, 0);
    const auto s_os = engine.score(ctx, *req, 1);
    EXPECT_GT(s_ws.latPref, s_os.latPref);
    // latPref is the inverse latency significance: sum/lat.
    const auto& next = req->path[0];
    EXPECT_DOUBLE_EQ(s_ws.latPref,
                     cb.costs().sumLatencyUs(next) /
                         cb.costs().cost(next, 0).latencyUs);
}

TEST(MapScore, StarvationGrowsWithQueueTime)
{
    test::ContextBuilder cb;
    const auto t = cb.addTask(test::toyModel());
    auto* req = cb.addRequest(t, 0.0, 1e6);
    core::MapScoreEngine engine(1.0, 1.0);
    const auto s_fresh = engine.score(cb.context(0.0), *req, 0);
    const auto s_waited = engine.score(cb.context(20000.0), *req, 0);
    EXPECT_DOUBLE_EQ(s_fresh.starvation, 0.0);
    EXPECT_GT(s_waited.starvation, 0.0);
}

TEST(MapScore, StarvationPrefersLightLayers)
{
    // Same wait time: the lighter next layer starves faster.
    test::ContextBuilder cb;
    models::Model heavy;
    heavy.name = "heavy";
    heavy.layers.push_back(models::conv("h", 112, 112, 64, 128, 3, 1));
    models::Model light;
    light.name = "light";
    light.layers.push_back(models::fc("l", 64, 64));
    const auto th = cb.addTask(std::move(heavy));
    const auto tl = cb.addTask(std::move(light));
    auto* rh = cb.addRequest(th, 0.0, 1e6);
    auto* rl = cb.addRequest(tl, 0.0, 1e6);
    auto& ctx = cb.context(10000.0);
    core::MapScoreEngine engine(1.0, 1.0);
    EXPECT_GT(engine.score(ctx, *rl, 0).starvation,
              engine.score(ctx, *rh, 0).starvation);
}

TEST(MapScore, SwitchCostZeroWhenResident)
{
    test::ContextBuilder cb;
    const auto t = cb.addTask(test::toyModel());
    auto* req = cb.addRequest(t, 0.0, 1e6);
    req->nextLayer = 1; // mid-model
    auto& ctx = cb.context(0.0);
    // Mark the request resident on accelerator 0.
    cb.accels()[0].residentRequestId = req->id;
    cb.accels()[0].lastTask = t;
    core::MapScoreEngine engine(1.0, 1.0);
    EXPECT_DOUBLE_EQ(engine.score(ctx, *req, 0).costSwitch, 0.0);
    // On the other accelerator its activations must be fetched.
    EXPECT_GT(engine.score(ctx, *req, 1).costSwitch, 0.0);
}

TEST(MapScore, AlphaBetaScaleTheirTerms)
{
    test::ContextBuilder cb;
    const auto t = cb.addTask(test::toyModel());
    auto* req = cb.addRequest(t, 0.0, 1e5);
    auto& ctx = cb.context(5000.0); // some queue time accrued
    core::MapScoreEngine base(0.0, 0.0);
    core::MapScoreEngine alpha(2.0, 0.0);
    core::MapScoreEngine beta(0.0, 2.0);
    const auto s0 = base.score(ctx, *req, 0);
    const auto sa = alpha.score(ctx, *req, 0);
    const auto sb = beta.score(ctx, *req, 0);
    EXPECT_DOUBLE_EQ(s0.mapScore, s0.urgency * s0.latPref);
    EXPECT_NEAR(sa.mapScore - s0.mapScore, 2.0 * sa.starvation, 1e-9);
    EXPECT_NEAR(sb.mapScore - s0.mapScore, 2.0 * sb.energy, 1e-9);
}

TEST(MapScore, ToGoIsAverageAcrossAccelerators)
{
    test::ContextBuilder cb;
    const auto t = cb.addTask(test::toyModel());
    auto* req = cb.addRequest(t, 0.0, 1e6);
    auto& ctx = cb.context(0.0);
    core::MapScoreEngine engine(1.0, 1.0);
    double expected = 0.0;
    for (const auto& l : req->path)
        expected += cb.costs().avgLatencyUs(l);
    EXPECT_NEAR(engine.toGoUs(ctx, *req), expected, 1e-9);
}

TEST(MapScore, MinToGoUsesBestAcceleratorPerLayer)
{
    test::ContextBuilder cb;
    const auto t = cb.addTask(test::toyModel());
    auto* req = cb.addRequest(t, 0.0, 1e6);
    auto& ctx = cb.context(0.0);
    core::MapScoreEngine engine(1.0, 1.0);
    double expected = 0.0;
    for (const auto& l : req->path)
        expected += cb.costs().minLatencyUs(l);
    EXPECT_NEAR(engine.minToGoUs(ctx, *req), expected, 1e-9);
    EXPECT_LE(engine.minToGoUs(ctx, *req), engine.toGoUs(ctx, *req));
}

TEST(MapScore, BestVariantMinToGoNotWorseThanCurrent)
{
    test::ContextBuilder cb;
    const auto t = cb.addTask(test::toySupernet());
    auto* req = cb.addRequest(t, 0.0, 1e6);
    auto& ctx = cb.context(0.0);
    core::MapScoreEngine engine(1.0, 1.0);
    EXPECT_LE(engine.minToGoBestVariantUs(ctx, *req),
              engine.minToGoUs(ctx, *req));
}

} // namespace
} // namespace dream
