/**
 * @file
 * ScenarioSearch tests: the transposition-table guarantee (a
 * (spec, genSeed) identity is never evaluated twice — mirroring
 * test_param_search.cc's simulations() == tableSize() invariant),
 * budget enforcement, trajectory determinism, and an engine-backed
 * smoke hunt whose frontier is byte-identical for any --jobs value.
 */

#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "engine/scenario_search.h"
#include "workload/rng.h"
#include "workload/scenario_suite.h"

namespace dream {
namespace {

/** Deterministic synthetic evaluator counting every evaluation per
 *  candidate identity (the CountingBowl of the scenario hunt). */
struct CountingOracle {
    std::map<std::string, int> evals;
    int calls = 0;

    engine::ScenarioSearch::BatchEvalFn fn()
    {
        return [this](
                   const std::vector<std::pair<
                       workload::ScenarioGenSpec, uint64_t>>& pts) {
            std::vector<std::pair<double, double>> out;
            out.reserve(pts.size());
            for (const auto& [spec, seed] : pts) {
                ++calls;
                ++evals[workload::serializeGenSpec(spec) + "#" +
                        std::to_string(seed)];
                // A rugged but deterministic objective surface: the
                // hash gives variation across seeds, the knobs give
                // the climb a direction.
                const double rough =
                    double(workload::rng::splitmix64(seed) % 997) /
                    199.0;
                const double target = rough + spec.targetLoad +
                                      2.0 * spec.chainProb;
                out.emplace_back(target, 0.5 * target);
            }
            return out;
        };
    }
};

engine::ScenarioSearch::Options
testOptions()
{
    engine::ScenarioSearch::Options opts;
    opts.budget = 60;
    opts.starts = 4;
    opts.neighbors = 5;
    opts.searchSeed = 7;
    return opts;
}

TEST(ScenarioSearch, NeverReevaluatesACandidate)
{
    CountingOracle oracle;
    engine::ScenarioSearch search(oracle.fn(), testOptions());
    const auto result = search.run();
    ASSERT_FALSE(result.frontier.empty());

    // THE transposition guarantee: every identity at most once, and
    // every simulation landed in the table.
    for (const auto& [key, count] : oracle.evals)
        EXPECT_EQ(count, 1) << key;
    EXPECT_EQ(search.simulations(), search.tableSize());
    EXPECT_EQ(uint64_t(oracle.calls), search.simulations());
    // The frontier lists each evaluated candidate exactly once.
    EXPECT_EQ(result.frontier.size(), search.tableSize());
}

TEST(ScenarioSearch, RespectsTheSimulationBudget)
{
    auto opts = testOptions();
    opts.budget = 10;
    CountingOracle oracle;
    engine::ScenarioSearch search(oracle.fn(), opts);
    search.run();
    EXPECT_LE(search.simulations(), 10u);
    EXPECT_GT(search.simulations(), 0u);
}

TEST(ScenarioSearch, TrajectoryIsDeterministic)
{
    const auto run_once = []() {
        CountingOracle oracle;
        engine::ScenarioSearch search(oracle.fn(), testOptions());
        const auto result = search.run();
        std::string out;
        for (const auto& c : result.frontier) {
            out += workload::serializeGenSpec(c.spec) + "#" +
                   std::to_string(c.genSeed) + "=" +
                   std::to_string(c.value) + "\n";
        }
        return out;
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(ScenarioSearch, ClimbsTheObjective)
{
    CountingOracle oracle;
    engine::ScenarioSearch search(oracle.fn(), testOptions());
    const auto result = search.run();
    ASSERT_FALSE(result.frontier.empty());
    // The frontier is sorted hardest-first and the best candidate
    // beats the base spec's own score structure (targetLoad and
    // chainProb both start far from their maxima).
    EXPECT_EQ(result.best.value, result.frontier.front().value);
    for (size_t i = 1; i < result.frontier.size(); ++i)
        EXPECT_GE(result.frontier[i - 1].value,
                  result.frontier[i].value);
    EXPECT_GT(result.best.value, 2.0);
}

TEST(ScenarioSearch, GapGoalUsesTheBaselineDifference)
{
    auto opts = testOptions();
    opts.goal = engine::ScenarioSearch::Goal::MaxGap;
    opts.budget = 20;
    CountingOracle oracle;
    engine::ScenarioSearch search(oracle.fn(), opts);
    const auto result = search.run();
    ASSERT_FALSE(result.frontier.empty());
    for (const auto& c : result.frontier)
        EXPECT_DOUBLE_EQ(c.value, c.uxTarget - c.uxBaseline);
}

TEST(ScenarioSearch, EngineBackedHuntIsJobsInvariant)
{
    // A real (tiny) hunt through engine::Engine: the frontier must
    // be identical for any worker count, like every engine output.
    const auto hunt = [](int jobs) {
        engine::ScenarioSearch::Options opts;
        opts.budget = 8;
        opts.starts = 2;
        opts.neighbors = 3;
        opts.maxShrinks = 1;
        opts.searchSeed = 3;
        opts.windowUs = 2e5;
        opts.jobs = jobs;
        engine::ScenarioSearch search(opts);
        const auto result = search.run();
        std::ostringstream out;
        for (const auto& c : result.frontier) {
            out << workload::serializeGenSpec(c.spec) << "#"
                << c.genSeed << "=" << c.value << "/" << c.uxTarget
                << "/" << c.uxBaseline << "\n";
        }
        return out.str();
    };
    const std::string serial = hunt(1);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, hunt(4));
}

} // namespace
} // namespace dream
