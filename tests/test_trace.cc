/** @file Tests for the frame trace: CSV export, the read side and
 *  trace replay (record -> replay reproduces the run exactly). */

#include <algorithm>
#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "costmodel/cost_table.h"
#include "runner/experiment.h"
#include "runner/trace.h"
#include "sim/simulator.h"
#include "workload/replay_source.h"

namespace dream {
namespace {

sim::RunStats
runWith(const hw::SystemConfig& system,
        const workload::Scenario& scenario, runner::SchedKind kind,
        double window_us, uint64_t seed,
        const workload::ArrivalSource* arrivals = nullptr)
{
    cost::CostTable costs(system);
    for (const auto& t : scenario.tasks)
        costs.addModel(t.model);
    sim::SimConfig cfg;
    cfg.windowUs = window_us;
    cfg.seed = seed;
    cfg.arrivals = arrivals;
    sim::Simulator simulator(system, scenario, costs, cfg);
    auto sched = runner::makeScheduler(kind);
    return simulator.run(*sched);
}

void
expectStatsBitIdentical(const sim::RunStats& a, const sim::RunStats& b)
{
    ASSERT_EQ(a.frames.size(), b.frames.size());
    for (size_t i = 0; i < a.frames.size(); ++i) {
        const auto& fa = a.frames[i];
        const auto& fb = b.frames[i];
        EXPECT_EQ(fa.task, fb.task) << "frame " << i;
        EXPECT_EQ(fa.frameIdx, fb.frameIdx) << "frame " << i;
        EXPECT_EQ(fa.arrivalUs, fb.arrivalUs) << "frame " << i;
        EXPECT_EQ(fa.deadlineUs, fb.deadlineUs) << "frame " << i;
        // NaN == never completed: both sides must agree, and real
        // completion times must match exactly.
        EXPECT_EQ(fa.isCompleted(), fb.isCompleted()) << "frame " << i;
        if (fa.isCompleted() && fb.isCompleted())
            EXPECT_EQ(fa.completionUs, fb.completionUs)
                << "frame " << i;
        EXPECT_EQ(fa.dropped, fb.dropped) << "frame " << i;
        EXPECT_EQ(fa.violated, fb.violated) << "frame " << i;
        EXPECT_EQ(fa.inWindow, fb.inWindow) << "frame " << i;
        EXPECT_EQ(fa.variant, fb.variant) << "frame " << i;
        EXPECT_EQ(fa.energyMj, fb.energyMj) << "frame " << i;
    }
    ASSERT_EQ(a.tasks.size(), b.tasks.size());
    for (size_t t = 0; t < a.tasks.size(); ++t) {
        EXPECT_EQ(a.tasks[t].totalFrames, b.tasks[t].totalFrames);
        EXPECT_EQ(a.tasks[t].completedFrames,
                  b.tasks[t].completedFrames);
        EXPECT_EQ(a.tasks[t].violatedFrames,
                  b.tasks[t].violatedFrames);
        EXPECT_EQ(a.tasks[t].droppedFrames, b.tasks[t].droppedFrames);
        EXPECT_EQ(a.tasks[t].energyMj, b.tasks[t].energyMj);
        EXPECT_EQ(a.tasks[t].sumLatencyUs, b.tasks[t].sumLatencyUs);
        EXPECT_EQ(a.tasks[t].worstCaseEnergyMj,
                  b.tasks[t].worstCaseEnergyMj);
        EXPECT_EQ(a.tasks[t].variantStarts, b.tasks[t].variantStarts);
    }
    EXPECT_EQ(a.contextSwitches, b.contextSwitches);
    EXPECT_EQ(a.contextSwitchEnergyMj, b.contextSwitchEnergyMj);
    EXPECT_EQ(a.schedulerInvocations, b.schedulerInvocations);
}

TEST(Trace, FrameRecordsMatchTaskStats)
{
    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k1Ws2Os);
    const auto scenario =
        workload::makeScenario(workload::ScenarioPreset::ArCall);
    auto sched = runner::makeScheduler(runner::SchedKind::Fcfs);
    const auto r = runner::runOnce(system, scenario, *sched, 1e6, 3);

    // Every admitted frame is recorded; exactly the in-window ones
    // are counted in TaskStats.
    uint64_t in_window = 0;
    std::vector<uint64_t> violated(scenario.tasks.size(), 0);
    std::vector<uint64_t> dropped(scenario.tasks.size(), 0);
    for (const auto& fr : r.stats.frames) {
        EXPECT_GE(fr.deadlineUs, fr.arrivalUs);
        if (fr.isCompleted()) {
            EXPECT_GE(fr.completionUs, fr.arrivalUs);
        }
        if (!fr.inWindow)
            continue;
        ++in_window;
        violated[size_t(fr.task)] += fr.violated ? 1 : 0;
        dropped[size_t(fr.task)] += fr.dropped ? 1 : 0;
    }
    EXPECT_EQ(in_window, r.stats.totalFrames());
    EXPECT_GE(r.stats.frames.size(), in_window);
    for (size_t t = 0; t < scenario.tasks.size(); ++t) {
        EXPECT_EQ(violated[t], r.stats.tasks[t].violatedFrames);
        EXPECT_EQ(dropped[t], r.stats.tasks[t].droppedFrames);
    }
}

TEST(Trace, CsvShapeAndHeader)
{
    const auto system = hw::makeSystem(hw::SystemPreset::Sys8k2Ws);
    const auto scenario =
        workload::makeScenario(workload::ScenarioPreset::DroneOutdoor);
    auto sched = runner::makeScheduler(runner::SchedKind::Fcfs);
    const auto r = runner::runOnce(system, scenario, *sched, 5e5, 3);

    const auto csv = runner::frameTraceCsv(r.stats, scenario);
    std::istringstream is(csv);
    std::string line;
    ASSERT_TRUE(std::getline(is, line));
    EXPECT_EQ(line,
              "task,model,frame,arrival_us,deadline_us,completion_us,"
              "latency_us,violated,dropped,in_window,variant,"
              "energy_mj");
    size_t rows = 0;
    while (std::getline(is, line)) {
        ++rows;
        // 12 columns -> 11 commas per row (no drone model name
        // contains a comma).
        EXPECT_EQ(std::count(line.begin(), line.end(), ','), 11);
    }
    EXPECT_EQ(rows, r.stats.frames.size());
    EXPECT_NE(csv.find("TrailNet"), std::string::npos);
}

TEST(Trace, RoundTripIsLosslessIncludingMeta)
{
    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k2Os);
    const auto scenario =
        workload::makeScenario(workload::ScenarioPreset::VrGaming);
    auto sched = runner::makeScheduler(runner::SchedKind::DreamFull);
    const auto r = runner::runOnce(system, scenario, *sched, 3e5, 7);

    const runner::TraceMeta meta = {{"scenario", "VR_Gaming"},
                                    {"seed", "7"}};
    const auto csv = runner::frameTraceCsv(r.stats, scenario, meta);
    std::istringstream is(csv);
    const auto trace = runner::readFrameTraceCsv(is);

    EXPECT_EQ(trace.meta, meta);
    EXPECT_EQ(trace.metaValue("scenario"), "VR_Gaming");
    EXPECT_EQ(trace.metaValue("absent"), "");
    ASSERT_EQ(trace.frames.size(), r.stats.frames.size());
    for (size_t i = 0; i < trace.frames.size(); ++i) {
        const auto& got = trace.frames[i];
        const auto& want = r.stats.frames[i];
        EXPECT_EQ(got.task, want.task);
        EXPECT_EQ(got.model,
                  scenario.tasks[size_t(want.task)].model.name);
        EXPECT_EQ(got.frameIdx, want.frameIdx);
        // Doubles survive the text round trip bit for bit.
        EXPECT_EQ(got.arrivalUs, want.arrivalUs);
        EXPECT_EQ(got.deadlineUs, want.deadlineUs);
        if (want.isCompleted()) {
            EXPECT_EQ(got.completionUs, want.completionUs);
            EXPECT_EQ(got.latencyUs,
                      want.completionUs - want.arrivalUs);
            EXPECT_TRUE(got.completed());
        } else {
            EXPECT_TRUE(std::isnan(got.completionUs));
            EXPECT_TRUE(std::isnan(got.latencyUs));
            EXPECT_FALSE(got.completed());
        }
        EXPECT_EQ(got.violated, want.violated);
        EXPECT_EQ(got.dropped, want.dropped);
        EXPECT_EQ(got.inWindow, want.inWindow);
        EXPECT_EQ(got.variant, want.variant);
        EXPECT_EQ(got.energyMj, want.energyMj);
    }
}

TEST(Trace, QuotedModelNamesRoundTrip)
{
    workload::Scenario scenario;
    scenario.name = "quoting";
    workload::TaskSpec spec;
    spec.model.name = "Weird, \"model\"\nv2";
    scenario.tasks.push_back(spec);

    sim::RunStats stats;
    sim::FrameRecord fr;
    fr.task = 0;
    fr.frameIdx = 4;
    fr.arrivalUs = 100.0;
    fr.deadlineUs = 200.0;
    fr.completionUs = 150.5;
    fr.energyMj = 1.25;
    stats.frames.push_back(fr);

    const auto csv = runner::frameTraceCsv(stats, scenario);
    // The raw name must not appear unquoted (it would shift cells).
    EXPECT_NE(csv.find("\"Weird, \"\"model\"\"\nv2\""),
              std::string::npos);

    std::istringstream is(csv);
    const auto trace = runner::readFrameTraceCsv(is);
    ASSERT_EQ(trace.frames.size(), 1u);
    EXPECT_EQ(trace.frames[0].model, "Weird, \"model\"\nv2");
    EXPECT_EQ(trace.frames[0].frameIdx, 4);
    EXPECT_EQ(trace.frames[0].completionUs, 150.5);
}

TEST(Trace, DroppedFramesWriteEmptyCellsNotSentinels)
{
    workload::Scenario scenario;
    workload::TaskSpec spec;
    spec.model.name = "cam";
    scenario.tasks.push_back(spec);

    sim::RunStats stats;
    sim::FrameRecord fr;
    fr.task = 0;
    fr.frameIdx = 0;
    fr.arrivalUs = 10.0;
    fr.deadlineUs = 20.0;
    // completionUs stays at its NaN default: never completed.
    fr.dropped = true;
    fr.violated = true;
    stats.frames.push_back(fr);

    const auto csv = runner::frameTraceCsv(stats, scenario);
    // No -1 sentinel anywhere: completion and latency are empty.
    EXPECT_EQ(csv.find("-1"), std::string::npos);
    EXPECT_NE(csv.find("cam,0,10,20,,,1,1,1,0,0"), std::string::npos);

    std::istringstream is(csv);
    const auto trace = runner::readFrameTraceCsv(is);
    ASSERT_EQ(trace.frames.size(), 1u);
    EXPECT_TRUE(std::isnan(trace.frames[0].completionUs));
    EXPECT_TRUE(std::isnan(trace.frames[0].latencyUs));
    EXPECT_TRUE(trace.frames[0].dropped);
    EXPECT_FALSE(trace.frames[0].completed());
}

TEST(Trace, ReaderRejectsMalformedInput)
{
    const auto read = [](const std::string& text) {
        std::istringstream is(text);
        return runner::readFrameTraceCsv(is);
    };
    const std::string header =
        "task,model,frame,arrival_us,deadline_us,completion_us,"
        "latency_us,violated,dropped,in_window,variant,energy_mj\n";

    EXPECT_THROW(read(""), std::runtime_error);
    EXPECT_THROW(read("model,frame\n"), std::runtime_error);
    // Wrong cell count.
    EXPECT_THROW(read(header + "0,cam,0\n"), std::runtime_error);
    // Non-numeric arrival.
    EXPECT_THROW(read(header + "0,cam,0,x,20,,,1,1,1,0,0\n"),
                 std::runtime_error);
    // Flags must be 0/1.
    EXPECT_THROW(read(header + "0,cam,0,10,20,,,2,1,1,0,0\n"),
                 std::runtime_error);
    // completion/latency must be empty together.
    EXPECT_THROW(read(header + "0,cam,0,10,20,15,,1,1,1,0,0\n"),
                 std::runtime_error);
    // Metadata lines must be key=value.
    EXPECT_THROW(read("# no equals sign\n" + header),
                 std::runtime_error);
    // Valid minimal trace parses.
    const auto trace =
        read("# k=v\n" + header + "0,cam,0,10,20,15,5,0,0,1,0,0.5\n");
    EXPECT_EQ(trace.frames.size(), 1u);
    EXPECT_EQ(trace.metaValue("k"), "v");
}

TEST(Trace, ReplayReproducesRecordedRunBitForBit)
{
    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k1Ws2Os);
    const auto scenario =
        workload::makeScenario(workload::ScenarioPreset::ArCall);

    for (const auto kind :
         {runner::SchedKind::Fcfs, runner::SchedKind::DreamFull}) {
        SCOPED_TRACE(runner::toString(kind));
        const auto original = runWith(system, scenario, kind, 5e5, 11);

        // Round-trip the trace through CSV text, then replay it.
        const auto csv = runner::frameTraceCsv(original, scenario);
        std::istringstream is(csv);
        const auto trace = runner::readFrameTraceCsv(is);
        const workload::ReplaySource replay(scenario, 11, trace);
        const auto replayed =
            runWith(system, scenario, kind, 5e5, 11, &replay);

        expectStatsBitIdentical(original, replayed);
        // The strongest form: the re-recorded trace is byte-identical.
        EXPECT_EQ(runner::frameTraceCsv(replayed, scenario), csv);
    }
}

TEST(Trace, ReplayInjectsIdenticalLoadUnderOtherSchedulers)
{
    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k2Ws);
    const auto scenario =
        workload::makeScenario(workload::ScenarioPreset::ArCall);
    const auto recorded =
        runWith(system, scenario, runner::SchedKind::Fcfs, 4e5, 11);
    const auto csv = runner::frameTraceCsv(recorded, scenario);
    std::istringstream is(csv);
    const auto trace = runner::readFrameTraceCsv(is);

    // A different scheduler sees the exact recorded arrival set —
    // including cascade frames at their recorded release times, which
    // a generative run would re-derive from its own completions.
    const workload::ReplaySource replay(scenario, 11, trace);
    const auto other = runWith(system, scenario,
                               runner::SchedKind::DreamFull, 4e5, 11,
                               &replay);
    ASSERT_EQ(other.frames.size(), trace.frames.size());
    for (size_t i = 0; i < other.frames.size(); ++i) {
        EXPECT_EQ(other.frames[i].task, trace.frames[i].task);
        EXPECT_EQ(other.frames[i].frameIdx, trace.frames[i].frameIdx);
        EXPECT_EQ(other.frames[i].arrivalUs,
                  trace.frames[i].arrivalUs);
        EXPECT_EQ(other.frames[i].deadlineUs,
                  trace.frames[i].deadlineUs);
    }
}

TEST(Trace, ReplaySourceValidatesTraceAgainstScenario)
{
    const auto scenario =
        workload::makeScenario(workload::ScenarioPreset::ArCall);

    workload::FrameTrace bad_task;
    workload::TraceFrame fr;
    fr.task = workload::TaskId(scenario.tasks.size());
    fr.model = "nope";
    bad_task.frames.push_back(fr);
    EXPECT_THROW(workload::ReplaySource(scenario, 1, bad_task),
                 std::runtime_error);

    workload::FrameTrace bad_model;
    fr.task = 0;
    fr.model = "not-the-recorded-model";
    bad_model.frames.push_back(fr);
    EXPECT_THROW(workload::ReplaySource(scenario, 1, bad_model),
                 std::runtime_error);

    workload::FrameTrace ok;
    fr.model = scenario.tasks[0].model.name;
    ok.frames.push_back(fr);
    const workload::ReplaySource replay(scenario, 1, ok);
    EXPECT_THROW(replay.childFrame(0, 0, 0.0, 0.0), std::logic_error);
}

} // namespace
} // namespace dream
