/** @file Tests for the frame trace and CSV export. */

#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

#include "runner/experiment.h"
#include "runner/trace.h"

namespace dream {
namespace {

TEST(Trace, FrameRecordsMatchTaskStats)
{
    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k1Ws2Os);
    const auto scenario =
        workload::makeScenario(workload::ScenarioPreset::ArCall);
    auto sched = runner::makeScheduler(runner::SchedKind::Fcfs);
    const auto r = runner::runOnce(system, scenario, *sched, 1e6, 3);

    EXPECT_EQ(r.stats.frames.size(), r.stats.totalFrames());
    std::vector<uint64_t> violated(scenario.tasks.size(), 0);
    std::vector<uint64_t> dropped(scenario.tasks.size(), 0);
    for (const auto& fr : r.stats.frames) {
        violated[size_t(fr.task)] += fr.violated ? 1 : 0;
        dropped[size_t(fr.task)] += fr.dropped ? 1 : 0;
        EXPECT_GE(fr.deadlineUs, fr.arrivalUs);
        if (fr.completionUs >= 0.0) {
            EXPECT_GE(fr.completionUs, fr.arrivalUs);
        }
    }
    for (size_t t = 0; t < scenario.tasks.size(); ++t) {
        EXPECT_EQ(violated[t], r.stats.tasks[t].violatedFrames);
        EXPECT_EQ(dropped[t], r.stats.tasks[t].droppedFrames);
    }
}

TEST(Trace, CsvShapeAndHeader)
{
    const auto system = hw::makeSystem(hw::SystemPreset::Sys8k2Ws);
    const auto scenario =
        workload::makeScenario(workload::ScenarioPreset::DroneOutdoor);
    auto sched = runner::makeScheduler(runner::SchedKind::Fcfs);
    const auto r = runner::runOnce(system, scenario, *sched, 5e5, 3);

    const auto csv = runner::frameTraceCsv(r.stats, scenario);
    std::istringstream is(csv);
    std::string line;
    ASSERT_TRUE(std::getline(is, line));
    EXPECT_EQ(line,
              "model,frame,arrival_us,deadline_us,completion_us,"
              "latency_us,violated,dropped,variant,energy_mj");
    size_t rows = 0;
    while (std::getline(is, line)) {
        ++rows;
        // 10 columns -> 9 commas per row.
        EXPECT_EQ(std::count(line.begin(), line.end(), ','), 9);
    }
    EXPECT_EQ(rows, r.stats.frames.size());
    EXPECT_NE(csv.find("TrailNet"), std::string::npos);
}

} // namespace
} // namespace dream
