/**
 * @file
 * Regression tests for the Plan::wakeUpUs contract: only
 * strictly-future wake-ups are honoured. A scheduler that keeps
 * requesting a stale (past or present) wake-up must not stall
 * virtual time or prevent the run from reaching the window end,
 * and wake-ups at or beyond the window end never fire.
 */

#include <gtest/gtest.h>

#include <vector>

#include "costmodel/cost_table.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace dream {
namespace {

/** Never dispatches; requests wake-ups and records invocations. */
class WakeupProbe : public sim::Scheduler {
public:
    enum class Mode {
        Stale,  ///< always request nowUs - 50 (in the past)
        Now,    ///< always request exactly nowUs
        Future, ///< request a fixed future time until it passes
        None,   ///< never request a wake-up
    };

    explicit WakeupProbe(Mode mode, double target_us = -1.0)
        : mode_(mode), targetUs_(target_us)
    {}

    std::string name() const override { return "WakeupProbe"; }

    sim::Plan plan(const sim::SchedulerContext& ctx) override
    {
        invocationTimes.push_back(ctx.nowUs);
        sim::Plan p;
        switch (mode_) {
          case Mode::Stale:
            p.wakeUpUs = ctx.nowUs - 50.0;
            break;
          case Mode::Now:
            p.wakeUpUs = ctx.nowUs;
            break;
          case Mode::Future:
            if (ctx.nowUs < targetUs_)
                p.wakeUpUs = targetUs_;
            break;
          case Mode::None:
            break;
        }
        return p;
    }

    std::vector<double> invocationTimes;

private:
    Mode mode_;
    double targetUs_;
};

/** One 10 fps toy task on a single-accelerator system. */
struct Fixture {
    Fixture()
    {
        system.name = "test-1WS";
        hw::AcceleratorConfig ws;
        ws.name = "WS";
        ws.numPes = 2048;
        ws.dataflow = hw::Dataflow::WeightStationary;
        system.accelerators = {ws};

        workload::TaskSpec task;
        task.model = test::toyModel();
        task.fps = 10.0;
        scenario.name = "wakeup-test";
        scenario.tasks.push_back(std::move(task));

        costs = std::make_unique<cost::CostTable>(system);
        costs->addModel(scenario.tasks[0].model);
    }

    sim::RunStats
    run(sim::Scheduler& sched, double window_us = 1e5)
    {
        sim::SimConfig cfg;
        cfg.windowUs = window_us;
        cfg.seed = 1;
        sim::Simulator simulator(system, scenario, *costs, cfg);
        return simulator.run(sched);
    }

    hw::SystemConfig system;
    workload::Scenario scenario;
    std::unique_ptr<cost::CostTable> costs;
};

TEST(Wakeup, StaleWakeupIsIgnoredAndRunTerminates)
{
    // Regression: a perpetually-stale wake-up used to be armable in
    // principle; if armed it would pull virtual time backwards and
    // the event loop would never reach the window end.
    Fixture f;
    WakeupProbe probe(WakeupProbe::Mode::Stale);
    const auto stats = f.run(probe);

    EXPECT_GE(stats.totalFrames(), 1u);
    ASSERT_FALSE(probe.invocationTimes.empty());
    // Virtual time never moved backwards across invocations.
    for (size_t i = 1; i < probe.invocationTimes.size(); ++i)
        EXPECT_GE(probe.invocationTimes[i],
                  probe.invocationTimes[i - 1]);
    // Only real events (frame arrivals) triggered the scheduler: one
    // invocation per arrival, no wake-up-driven re-invocations.
    EXPECT_EQ(probe.invocationTimes.size(), size_t(stats.totalFrames()));
}

TEST(Wakeup, PresentTimeWakeupIsIgnored)
{
    Fixture f;
    WakeupProbe probe(WakeupProbe::Mode::Now);
    const auto stats = f.run(probe);
    EXPECT_GE(stats.totalFrames(), 1u);
    EXPECT_EQ(probe.invocationTimes.size(), size_t(stats.totalFrames()));
}

TEST(Wakeup, FutureWakeupFiresAtRequestedTime)
{
    Fixture f;
    const double target = 12345.0;
    WakeupProbe probe(WakeupProbe::Mode::Future, target);
    f.run(probe);

    bool fired = false;
    for (const double t : probe.invocationTimes)
        fired = fired || t == target;
    EXPECT_TRUE(fired) << "scheduler was not re-invoked at its "
                          "requested wake-up time";
}

TEST(Wakeup, WakeupBeyondWindowNeverFires)
{
    Fixture f;
    const double window = 1e5;
    WakeupProbe probe(WakeupProbe::Mode::Future, 2e5);
    f.run(probe, window);

    for (const double t : probe.invocationTimes)
        EXPECT_LT(t, window);
}

} // namespace
} // namespace dream
