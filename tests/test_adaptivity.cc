/** @file Tests for the adaptivity engine (offline search + tuner). */

#include <cmath>

#include <gtest/gtest.h>

#include "core/adaptivity.h"
#include "test_util.h"

namespace dream {
namespace {

TEST(ParamSearch, ConvergesOnConvexBowl)
{
    // Minimum at (0.7, 1.3).
    const auto bowl = [](double a, double b) {
        return (a - 0.7) * (a - 0.7) + (b - 1.3) * (b - 1.3);
    };
    core::ParamSearch search(0.5, 0.01, 0.0, 2.0);
    const auto r = search.optimize(bowl, 1.9, 0.1);
    EXPECT_NEAR(r.alpha, 0.7, 0.15);
    EXPECT_NEAR(r.beta, 1.3, 0.15);
    EXPECT_LT(r.cost, 0.05);
    EXPECT_GT(r.evaluations, 10);
    EXPECT_FALSE(r.trajectory.empty());
}

TEST(ParamSearch, RespectsBounds)
{
    const auto edge = [](double a, double b) { return -(a + b); };
    core::ParamSearch search(0.5, 0.05, 0.0, 2.0);
    const auto r = search.optimize(edge, 1.0, 1.0);
    EXPECT_LE(r.alpha, 2.0);
    EXPECT_LE(r.beta, 2.0);
    EXPECT_GE(r.alpha, 0.0);
    EXPECT_GE(r.beta, 0.0);
    // The optimum of -(a+b) on [0,2]^2 is the (2,2) corner.
    EXPECT_NEAR(r.alpha, 2.0, 0.26);
    EXPECT_NEAR(r.beta, 2.0, 0.26);
}

TEST(ParamSearch, TrajectoryMonotoneSteps)
{
    const auto bowl = [](double a, double b) {
        return (a - 1.0) * (a - 1.0) + (b - 1.0) * (b - 1.0);
    };
    core::ParamSearch search(0.5, 0.05, 0.0, 2.0);
    const auto r = search.optimize(bowl, 0.0, 2.0);
    // Accepted cost never increases along the trajectory.
    for (size_t i = 1; i < r.trajectory.size(); ++i)
        EXPECT_LE(r.trajectory[i].cost, r.trajectory[i - 1].cost + 1e-12);
    // Steps are numbered consecutively from zero.
    for (size_t i = 0; i < r.trajectory.size(); ++i)
        EXPECT_EQ(r.trajectory[i].step, int(i));
}

TEST(ParamSearch, RadiusShrinksBelowThreshold)
{
    int evals = 0;
    const auto counting = [&evals](double, double) {
        ++evals;
        return 1.0;
    };
    core::ParamSearch search(0.4, 0.1, 0.0, 2.0);
    const auto r = search.optimize(counting, 1.0, 1.0);
    // Radii 0.4, 0.2, 0.1 -> 3 refinement steps + initial point.
    EXPECT_EQ(r.trajectory.size(), 4u);
    EXPECT_EQ(evals, r.evaluations);
}

TEST(WindowedObjective, UsesDeltasBetweenSnapshots)
{
    sim::RunStats begin, end;
    begin.tasks.resize(1);
    end.tasks.resize(1);
    begin.tasks[0].totalFrames = 50;
    begin.tasks[0].violatedFrames = 5;
    begin.tasks[0].energyMj = 10.0;
    begin.tasks[0].worstCaseEnergyMj = 20.0;
    end.tasks[0].totalFrames = 100;
    end.tasks[0].violatedFrames = 15;
    end.tasks[0].energyMj = 30.0;
    end.tasks[0].worstCaseEnergyMj = 60.0;
    // Window: 50 frames, 10 violations, 20/40 energy.
    const double v = core::windowedObjective(
        metrics::Objective::UxCost, begin, end);
    EXPECT_DOUBLE_EQ(v, (10.0 / 50.0) * (20.0 / 40.0));
}

TEST(OnlineTuner, DisabledWhenConfigSaysSo)
{
    auto cfg = core::DreamConfig::fixedParams(1.0, 1.0);
    core::OnlineTuner tuner(cfg);
    core::MapScoreEngine engine(1.0, 1.0);
    test::ContextBuilder cb;
    cb.addTask(test::toyModel());
    EXPECT_LT(tuner.update(cb.context(0.0), engine), 0.0);
    EXPECT_FALSE(tuner.tuning());
}

TEST(OnlineTuner, RunsTrialRoundsAndConverges)
{
    auto cfg = core::DreamConfig::mapScore();
    cfg.trialWindowUs = 100.0;
    cfg.initialRadius = 0.2;
    cfg.radiusThreshold = 0.15; // a single refinement round
    core::OnlineTuner tuner(cfg);
    core::MapScoreEngine engine(1.0, 1.0);
    test::ContextBuilder cb;
    const auto t = cb.addTask(test::toyModel());
    cb.addRequest(t, 0.0, 1e6);

    double now = 0.0;
    double wake = tuner.update(cb.context(now), engine);
    EXPECT_GT(wake, now);
    EXPECT_TRUE(tuner.tuning());
    // Drive the trial state machine to completion.
    for (int i = 0; i < 50 && tuner.tuning(); ++i) {
        now = wake > now ? wake : now + 100.0;
        wake = tuner.update(cb.context(now), engine);
    }
    EXPECT_FALSE(tuner.tuning());
    EXPECT_GE(tuner.completedSteps(), 1);
    // Parameters remain within the legal range.
    EXPECT_GE(engine.alpha(), cfg.paramMin);
    EXPECT_LE(engine.alpha(), cfg.paramMax);
    EXPECT_GE(engine.beta(), cfg.paramMin);
    EXPECT_LE(engine.beta(), cfg.paramMax);
}

} // namespace
} // namespace dream
