/** @file Tests for scenarios (Table 3) and frame materialisation. */

#include <map>

#include <gtest/gtest.h>

#include "workload/frame_source.h"
#include "workload/scenario.h"

namespace dream {
namespace {

using namespace workload;

TEST(Scenario, AllPresetsBuild)
{
    EXPECT_EQ(allScenarioPresets().size(), 5u);
    for (const auto preset : allScenarioPresets()) {
        const auto s = makeScenario(preset);
        EXPECT_FALSE(s.tasks.empty());
        EXPECT_EQ(s.name, toString(preset));
        for (const auto& t : s.tasks) {
            EXPECT_GT(t.fps, 0.0);
            EXPECT_FALSE(t.model.layers.empty());
            if (t.dependsOn != kNoParent) {
                EXPECT_GE(t.dependsOn, 0);
                EXPECT_LT(size_t(t.dependsOn), s.tasks.size());
            }
        }
    }
}

TEST(Scenario, ArCallMatchesTable3)
{
    const auto s = makeScenario(ScenarioPreset::ArCall);
    ASSERT_EQ(s.tasks.size(), 3u);
    EXPECT_EQ(s.tasks[0].model.name, "KWS_res8");
    EXPECT_DOUBLE_EQ(s.tasks[0].fps, 15.0);
    EXPECT_EQ(s.tasks[1].model.name, "GNMT");
    EXPECT_EQ(s.tasks[1].dependsOn, 0);
    EXPECT_EQ(s.tasks[2].model.name, "SkipNet");
    EXPECT_DOUBLE_EQ(s.tasks[2].fps, 30.0);
}

TEST(Scenario, CascadeProbabilityPropagates)
{
    const auto s = makeScenario(ScenarioPreset::ArSocial, 0.9);
    bool found = false;
    for (const auto& t : s.tasks) {
        if (t.dependsOn != kNoParent) {
            EXPECT_DOUBLE_EQ(t.triggerProb, 0.9);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Scenario, LeafDetection)
{
    const auto s = makeScenario(ScenarioPreset::ArCall);
    EXPECT_FALSE(s.isLeaf(0)); // KWS has GNMT downstream
    EXPECT_TRUE(s.isLeaf(1));  // GNMT
    EXPECT_TRUE(s.isLeaf(2));  // SkipNet
    EXPECT_EQ(s.childrenOf(0), std::vector<TaskId>{1});
}

TEST(FrameSource, PeriodicRootArrivals)
{
    const auto s = makeScenario(ScenarioPreset::DroneOutdoor);
    FrameSource src(s, 7);
    const auto frames = src.rootFrames(1e6); // 1 s
    std::map<TaskId, int> counts;
    for (const auto& f : frames) {
        counts[f.task] += 1;
        EXPECT_DOUBLE_EQ(f.deadlineUs,
                         f.arrivalUs + s.tasks[f.task].periodUs());
    }
    EXPECT_EQ(counts[0], 30); // SSD at 30 FPS
    EXPECT_EQ(counts[1], 60); // TrailNet at 60 FPS
    EXPECT_EQ(counts[2], 60); // SOSNet at 60 FPS
}

TEST(FrameSource, DeterministicAcrossInstances)
{
    const auto s = makeScenario(ScenarioPreset::ArCall);
    FrameSource a(s, 42), b(s, 42);
    const auto fa = a.rootFrames(5e5);
    const auto fb = b.rootFrames(5e5);
    ASSERT_EQ(fa.size(), fb.size());
    for (size_t i = 0; i < fa.size(); ++i) {
        EXPECT_EQ(fa[i].path.size(), fb[i].path.size());
        EXPECT_EQ(fa[i].childTriggers, fb[i].childTriggers);
    }
}

TEST(FrameSource, SeedChangesMaterialisation)
{
    const auto s = makeScenario(ScenarioPreset::ArCall);
    FrameSource a(s, 1), b(s, 2);
    // SkipNet path lengths should differ for at least one frame.
    bool differs = false;
    for (int i = 0; i < 30 && !differs; ++i) {
        differs = a.materialisePath(2, i).size() !=
                  b.materialisePath(2, i).size();
    }
    EXPECT_TRUE(differs);
}

TEST(FrameSource, SkipGateStatisticsMatchProbability)
{
    const auto s = makeScenario(ScenarioPreset::ArCall);
    FrameSource src(s, 11);
    const auto& skipnet = s.tasks[2].model;
    const size_t full = skipnet.layers.size();
    int skipped_any = 0;
    const int n = 400;
    for (int i = 0; i < n; ++i) {
        if (src.materialisePath(2, i).size() < full)
            ++skipped_any;
    }
    // With >= 8 gates at 50% each, virtually every frame skips
    // something.
    EXPECT_GT(skipped_any, n * 9 / 10);
}

TEST(FrameSource, EarlyExitTruncatesPath)
{
    const auto s = makeScenario(ScenarioPreset::DroneIndoor);
    // Task 1 is RAPID_RL with two 50% exits.
    FrameSource src(s, 5);
    const auto& model = s.tasks[1].model;
    int exited = 0;
    const int n = 400;
    for (int i = 0; i < n; ++i) {
        const auto path = src.materialisePath(1, i);
        EXPECT_LE(path.size(), model.layers.size());
        if (path.size() < model.layers.size())
            ++exited;
    }
    // P(any exit) = 1 - 0.5*0.5 = 0.75.
    EXPECT_NEAR(double(exited) / n, 0.75, 0.08);
}

TEST(FrameSource, CascadeTriggerRateMatchesProbability)
{
    const auto s = makeScenario(ScenarioPreset::ArCall, 0.3);
    FrameSource src(s, 13);
    const auto frames = src.rootFrames(60e6); // many KWS frames
    int triggers = 0, total = 0;
    for (const auto& f : frames) {
        if (f.task != 0)
            continue;
        ASSERT_EQ(f.childTriggers.size(), 1u);
        triggers += f.childTriggers[0];
        ++total;
    }
    ASSERT_GT(total, 500);
    EXPECT_NEAR(double(triggers) / total, 0.3, 0.05);
}

TEST(FrameSource, ChildDeadlineFromRelease)
{
    const auto s = makeScenario(ScenarioPreset::ArCall);
    FrameSource src(s, 3);
    const auto child = src.childFrame(1, 4, 1000.0, 5000.0);
    EXPECT_EQ(child.task, 1);
    EXPECT_DOUBLE_EQ(child.arrivalUs, 5000.0);
    EXPECT_DOUBLE_EQ(child.deadlineUs,
                     5000.0 + s.tasks[1].periodUs());
}

TEST(FrameSource, TaskActivationWindowLimitsFrames)
{
    auto s = makeScenario(ScenarioPreset::DroneOutdoor);
    s.tasks[1].startUs = 2e5;
    s.tasks[1].endUs = 6e5;
    FrameSource src(s, 1);
    const auto frames = src.rootFrames(1e6);
    for (const auto& f : frames) {
        if (f.task == 1) {
            EXPECT_GE(f.arrivalUs, 2e5);
            EXPECT_LT(f.arrivalUs, 6e5);
        }
    }
}

} // namespace
} // namespace dream
