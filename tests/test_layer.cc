/** @file Unit tests for layer shape math. */

#include <gtest/gtest.h>

#include "models/layer.h"

namespace dream {
namespace {

using namespace models;

TEST(Layer, ConvShapes)
{
    const Layer l = conv("c", 224, 224, 3, 64, 7, 2);
    EXPECT_EQ(l.outH(), 112u);
    EXPECT_EQ(l.outW(), 112u);
    EXPECT_EQ(l.outPositions(), 112ull * 112);
    EXPECT_EQ(l.inCPerGroup(), 3u);
    EXPECT_EQ(l.accumulationDepth(), 3ull * 7 * 7);
    EXPECT_EQ(l.macs(), 112ull * 112 * 64 * 3 * 7 * 7);
    EXPECT_EQ(l.weightBytes(), 64ull * 3 * 7 * 7);
    EXPECT_EQ(l.inputBytes(), 224ull * 224 * 3);
    EXPECT_EQ(l.outputBytes(), 112ull * 112 * 64);
}

TEST(Layer, SamePaddingRoundsUp)
{
    const Layer l = conv("c", 7, 7, 8, 8, 3, 2);
    EXPECT_EQ(l.outH(), 4u);
    EXPECT_EQ(l.outW(), 4u);
}

TEST(Layer, DepthwiseGrouping)
{
    const Layer l = dwConv("dw", 56, 56, 128, 3, 1);
    EXPECT_EQ(l.groups, 128u);
    EXPECT_EQ(l.inCPerGroup(), 1u);
    EXPECT_EQ(l.accumulationDepth(), 9ull);
    EXPECT_EQ(l.macs(), 56ull * 56 * 128 * 9);
    EXPECT_EQ(l.weightBytes(), 128ull * 9);
}

TEST(Layer, PointwiseIsOneByOne)
{
    const Layer l = pwConv("pw", 28, 28, 64, 128);
    EXPECT_EQ(l.kH, 1u);
    EXPECT_EQ(l.kW, 1u);
    EXPECT_EQ(l.macs(), 28ull * 28 * 64 * 128);
}

TEST(Layer, FullyConnected)
{
    const Layer l = fc("fc", 1024, 4096);
    EXPECT_EQ(l.outPositions(), 1ull);
    EXPECT_EQ(l.macs(), 1024ull * 4096);
    EXPECT_EQ(l.weightBytes(), 1024ull * 4096);
    EXPECT_EQ(l.inputBytes(), 1024ull);
    EXPECT_EQ(l.outputBytes(), 4096ull);
}

TEST(Layer, RnnRepeatsScaleMacsAndActivations)
{
    const Layer l = rnn("r", 1024, 4096, 24);
    EXPECT_EQ(l.macs(), 24ull * 1024 * 4096);
    // Weights are shared across steps.
    EXPECT_EQ(l.weightBytes(), 1024ull * 4096);
    EXPECT_EQ(l.inputBytes(), 24ull * 1024);
    EXPECT_EQ(l.outputBytes(), 24ull * 4096);
}

TEST(Layer, PoolHasNoWeights)
{
    const Layer l = pool("p", 56, 56, 64, 2, 2);
    EXPECT_EQ(l.weightBytes(), 0ull);
    EXPECT_EQ(l.macs(), 28ull * 28 * 64 * 4);
    EXPECT_EQ(l.outH(), 28u);
}

TEST(Layer, EltwiseCountsOnePerElement)
{
    const Layer l = eltwise("e", 14, 14, 256);
    EXPECT_EQ(l.macs(), 14ull * 14 * 256);
    EXPECT_EQ(l.weightBytes(), 0ull);
}

TEST(Layer, KindNames)
{
    EXPECT_EQ(toString(LayerKind::Conv2d), "conv");
    EXPECT_EQ(toString(LayerKind::FullyConnected), "fc");
    EXPECT_EQ(toString(LayerKind::Rnn), "rnn");
    EXPECT_EQ(toString(LayerKind::Pool), "pool");
    EXPECT_EQ(toString(LayerKind::Eltwise), "eltwise");
}

} // namespace
} // namespace dream
