/** @file Tests for the shared cost-table cache: key canonicality,
 *  table sharing, LRU eviction, the frozen-table contract and the
 *  --no-cost-cache bypass. */

#include <memory>
#include <stdexcept>

#include <gtest/gtest.h>

#include "costmodel/cost_table_cache.h"
#include "hw/system.h"
#include "models/layer.h"
#include "workload/scenario.h"

namespace dream {
namespace {

/** Restore the process-global enable flag and cache on exit, so a
 *  test toggling --no-cost-cache semantics cannot leak into its
 *  siblings (the flag and cache are process-wide). */
struct CacheStateGuard {
    bool saved = cost::CostTableCache::enabled();
    ~CacheStateGuard()
    {
        cost::CostTableCache::setEnabled(saved);
        cost::CostTableCache::global().clear();
    }
};

TEST(CostTableCache, EqualPairsShareOneFrozenTable)
{
    cost::CostTableCache cache;
    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k1Os2Ws);
    const auto scenario =
        workload::makeScenario(workload::ScenarioPreset::ArCall);

    const auto r1 = cache.acquire(system, scenario);
    EXPECT_FALSE(r1.hit);
    ASSERT_NE(r1.table, nullptr);
    EXPECT_TRUE(r1.table->frozen());
    EXPECT_GT(r1.table->numLayers(), 0u);

    // A scenario built again from the same preset is a different
    // object with the same canonical identity: it must hit and get
    // the very same table object.
    const auto scenario2 =
        workload::makeScenario(workload::ScenarioPreset::ArCall);
    const auto r2 = cache.acquire(system, scenario2);
    EXPECT_TRUE(r2.hit);
    EXPECT_EQ(r1.table.get(), r2.table.get());

    const auto stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.evictions, 0u);
    EXPECT_EQ(stats.entries, 1u);
}

TEST(CostTableCache, DistinctSystemsBuildDistinctTables)
{
    cost::CostTableCache cache;
    const auto scenario =
        workload::makeScenario(workload::ScenarioPreset::ArCall);
    const auto ra = cache.acquire(
        hw::makeSystem(hw::SystemPreset::Sys4k2Ws), scenario);
    const auto rb = cache.acquire(
        hw::makeSystem(hw::SystemPreset::Sys8k2Ws), scenario);
    EXPECT_FALSE(ra.hit);
    EXPECT_FALSE(rb.hit);
    EXPECT_NE(ra.table.get(), rb.table.get());
    EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(CostTableCache, KeyIsTheDeduplicatedModelSet)
{
    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k1Os2Ws);
    const auto scenario =
        workload::makeScenario(workload::ScenarioPreset::ArCall);

    // Duplicating a task changes the scenario but not its model SET,
    // so the cache key — and therefore the table — is unchanged.
    auto doubled = scenario;
    doubled.tasks.push_back(scenario.tasks.front());
    EXPECT_EQ(cost::makeTableKey(system, scenario),
              cost::makeTableKey(system, doubled));

    cost::CostTableCache cache;
    cache.acquire(system, scenario);
    EXPECT_TRUE(cache.acquire(system, doubled).hit);
}

TEST(CostTableCache, SystemFingerprintSeparatesPresets)
{
    const auto a =
        cost::systemFingerprint(hw::makeSystem(hw::SystemPreset::Sys4k2Ws));
    const auto b =
        cost::systemFingerprint(hw::makeSystem(hw::SystemPreset::Sys4k2Os));
    EXPECT_NE(a, b);
    EXPECT_EQ(a, cost::systemFingerprint(
                     hw::makeSystem(hw::SystemPreset::Sys4k2Ws)));
}

TEST(CostTableCache, LeastRecentlyUsedEntryIsEvictedAtCapacity)
{
    cost::CostTableCache cache(2);
    const auto scenario =
        workload::makeScenario(workload::ScenarioPreset::ArCall);
    const auto sysA = hw::makeSystem(hw::SystemPreset::Sys4k2Ws);
    const auto sysB = hw::makeSystem(hw::SystemPreset::Sys4k2Os);
    const auto sysC = hw::makeSystem(hw::SystemPreset::Sys8k2Ws);

    cache.acquire(sysA, scenario);
    cache.acquire(sysB, scenario);
    // Touch A so B becomes least-recently-used.
    EXPECT_TRUE(cache.acquire(sysA, scenario).hit);

    const auto r3 = cache.acquire(sysC, scenario);
    EXPECT_FALSE(r3.hit);
    EXPECT_EQ(r3.evicted, 1u);

    // A survived the eviction, B did not.
    EXPECT_TRUE(cache.acquire(sysA, scenario).hit);
    EXPECT_FALSE(cache.acquire(sysB, scenario).hit);

    const auto stats = cache.stats();
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_GE(stats.evictions, 2u);
}

TEST(CostTableCache, ShrinkingCapacityEvictsImmediately)
{
    cost::CostTableCache cache;
    const auto scenario =
        workload::makeScenario(workload::ScenarioPreset::ArCall);
    cache.acquire(hw::makeSystem(hw::SystemPreset::Sys4k2Ws), scenario);
    cache.acquire(hw::makeSystem(hw::SystemPreset::Sys4k2Os), scenario);
    cache.acquire(hw::makeSystem(hw::SystemPreset::Sys8k2Ws), scenario);
    ASSERT_EQ(cache.stats().entries, 3u);

    cache.setCapacity(1);
    EXPECT_EQ(cache.stats().entries, 1u);
    EXPECT_EQ(cache.stats().evictions, 2u);
    // The survivor is the most recently used key.
    EXPECT_TRUE(
        cache.acquire(hw::makeSystem(hw::SystemPreset::Sys8k2Ws), scenario)
            .hit);
}

TEST(CostTableCache, SharedTableIsFrozenAgainstUnknownLayers)
{
    cost::CostTableCache cache;
    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k1Os2Ws);
    const auto scenario =
        workload::makeScenario(workload::ScenarioPreset::ArCall);
    const auto table = cache.acquire(system, scenario).table;

    // Every layer of the scenario's models is pre-warmed...
    for (const auto& task : scenario.tasks)
        for (const auto& layer : task.model.layers)
            EXPECT_GT(table->minLatencyUs(layer), 0.0);

    // ...and a shape outside the model set must throw rather than
    // lazily extend a table other threads may be reading.
    const auto foreign =
        models::conv("not-in-any-arcall-model", 13, 13, 7, 5, 3);
    EXPECT_THROW(table->minLatencyUs(foreign), std::logic_error);
}

TEST(CostTableCache, DisabledAcquireBypassesTheGlobalCache)
{
    CacheStateGuard guard;
    cost::CostTableCache::global().clear();
    cost::CostTableCache::setEnabled(false);

    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k1Os2Ws);
    const auto scenario =
        workload::makeScenario(workload::ScenarioPreset::ArCall);
    const auto t1 = cost::acquireCostTable(system, scenario);
    const auto t2 = cost::acquireCostTable(system, scenario);

    // Pre-cache behaviour: private lazy tables, one per call.
    ASSERT_NE(t1, nullptr);
    ASSERT_NE(t2, nullptr);
    EXPECT_NE(t1.get(), t2.get());
    EXPECT_FALSE(t1->frozen());

    const auto stats = cost::CostTableCache::global().stats();
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.misses, 0u);
    EXPECT_EQ(stats.entries, 0u);
}

TEST(CostTableCache, EnabledAcquireSharesThroughTheGlobalCache)
{
    CacheStateGuard guard;
    cost::CostTableCache::global().clear();
    cost::CostTableCache::setEnabled(true);

    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k1Os2Ws);
    const auto scenario =
        workload::makeScenario(workload::ScenarioPreset::ArCall);
    const auto t1 = cost::acquireCostTable(system, scenario);
    const auto t2 = cost::acquireCostTable(system, scenario);
    EXPECT_EQ(t1.get(), t2.get());
    EXPECT_TRUE(t1->frozen());

    const auto stats = cost::CostTableCache::global().stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
}

} // anonymous namespace
} // namespace dream
