/** @file Tests for statistics and the UXCost metric (Algorithm 2). */

#include <gtest/gtest.h>

#include "metrics/uxcost.h"
#include "sim/stats.h"

namespace dream {
namespace {

sim::TaskStats
taskStats(uint64_t total, uint64_t violated, double energy,
          double worst)
{
    sim::TaskStats ts;
    ts.totalFrames = total;
    ts.violatedFrames = violated;
    ts.energyMj = energy;
    ts.worstCaseEnergyMj = worst;
    return ts;
}

TEST(TaskStats, DlvRateBasic)
{
    EXPECT_DOUBLE_EQ(taskStats(100, 25, 0, 0).dlvRate(), 0.25);
}

TEST(TaskStats, DlvRateZeroViolationFloor)
{
    // Algorithm 2 lines 7-8: 1 / (2 * total frames).
    EXPECT_DOUBLE_EQ(taskStats(60, 0, 0, 0).dlvRate(),
                     1.0 / 120.0);
}

TEST(TaskStats, DlvRateNoFrames)
{
    EXPECT_DOUBLE_EQ(taskStats(0, 0, 0, 0).dlvRate(), 0.0);
}

TEST(TaskStats, NormEnergy)
{
    EXPECT_DOUBLE_EQ(taskStats(10, 0, 50.0, 200.0).normEnergy(), 0.25);
    EXPECT_DOUBLE_EQ(taskStats(10, 0, 50.0, 0.0).normEnergy(), 0.0);
}

TEST(RunStats, OverallSumsPerModel)
{
    sim::RunStats rs;
    rs.tasks.push_back(taskStats(100, 10, 30.0, 100.0)); // 0.1, 0.3
    rs.tasks.push_back(taskStats(50, 0, 20.0, 40.0));    // 0.01, 0.5
    EXPECT_DOUBLE_EQ(rs.overallDlvRate(), 0.1 + 0.01);
    EXPECT_DOUBLE_EQ(rs.overallNormEnergy(), 0.3 + 0.5);
    EXPECT_EQ(rs.totalFrames(), 150u);
    EXPECT_EQ(rs.totalViolated(), 10u);
    EXPECT_DOUBLE_EQ(rs.totalEnergyMj(), 50.0);
    EXPECT_DOUBLE_EQ(rs.violationFraction(), 10.0 / 150.0);
}

TEST(UxCost, IsProductOfRateAndEnergy)
{
    sim::RunStats rs;
    rs.tasks.push_back(taskStats(100, 20, 50.0, 100.0)); // 0.2, 0.5
    rs.tasks.push_back(taskStats(100, 10, 25.0, 100.0)); // 0.1, 0.25
    EXPECT_DOUBLE_EQ(metrics::uxCost(rs), 0.3 * 0.75);
}

TEST(UxCost, ZeroViolationsDoNotZeroTheMetric)
{
    sim::RunStats rs;
    rs.tasks.push_back(taskStats(60, 0, 50.0, 100.0));
    EXPECT_GT(metrics::uxCost(rs), 0.0);
}

TEST(UxCost, LowerIsBetterUnderImprovement)
{
    sim::RunStats worse, better;
    worse.tasks.push_back(taskStats(100, 40, 80.0, 100.0));
    better.tasks.push_back(taskStats(100, 10, 60.0, 100.0));
    EXPECT_LT(metrics::uxCost(better), metrics::uxCost(worse));
}

TEST(Objective, EvaluateDispatch)
{
    sim::RunStats rs;
    rs.tasks.push_back(taskStats(100, 20, 50.0, 100.0));
    EXPECT_DOUBLE_EQ(
        metrics::evaluate(metrics::Objective::UxCost, rs),
        metrics::uxCost(rs));
    EXPECT_DOUBLE_EQ(
        metrics::evaluate(metrics::Objective::DlvRateOnly, rs),
        rs.overallDlvRate());
    EXPECT_DOUBLE_EQ(
        metrics::evaluate(metrics::Objective::EnergyOnly, rs),
        rs.overallNormEnergy());
}

TEST(Objective, Names)
{
    EXPECT_STREQ(metrics::toString(metrics::Objective::UxCost),
                 "UXCost");
    EXPECT_STREQ(metrics::toString(metrics::Objective::DlvRateOnly),
                 "DLVRate");
    EXPECT_STREQ(metrics::toString(metrics::Objective::EnergyOnly),
                 "Energy");
}

} // namespace
} // namespace dream
