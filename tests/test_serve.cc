/** @file Tests for the serving subsystem: stream-mode replay parity
 *  with the offline simulator, the incremental Simulator API, the
 *  admission controller's reject/degrade policies, and rolling-window
 *  telemetry vs the exact LatencyHistogram. */

#include <algorithm>
#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "costmodel/cost_table.h"
#include "obs/rolling.h"
#include "runner/experiment.h"
#include "runner/trace.h"
#include "sched/fcfs.h"
#include "serve/serve_loop.h"
#include "sim/simulator.h"
#include "workload/replay_source.h"
#include "workload/stream_source.h"

#include "test_util.h"

namespace dream {
namespace {

/** Push every root frame in arrival order and close the stream. */
void
feedStream(workload::StreamSource& stream,
           const workload::ArrivalSource& source, double window_us)
{
    auto frames = source.rootFrames(window_us);
    std::stable_sort(frames.begin(), frames.end(),
                     [](const auto& a, const auto& b) {
                         return a.arrivalUs < b.arrivalUs;
                     });
    for (auto& frame : frames)
        stream.push(std::move(frame));
    stream.close();
}

void
expectStatsBitIdentical(const workload::Scenario& scenario,
                        const sim::RunStats& a, const sim::RunStats& b)
{
    // The frame-trace CSV serialises every admitted frame's exact
    // doubles (shortest-round-trip), so string equality is
    // bit-identity of the per-frame stats.
    EXPECT_EQ(runner::frameTraceCsv(a, scenario),
              runner::frameTraceCsv(b, scenario));
    EXPECT_EQ(a.contextSwitches, b.contextSwitches);
    EXPECT_EQ(a.contextSwitchEnergyMj, b.contextSwitchEnergyMj);
    EXPECT_EQ(a.schedulerInvocations, b.schedulerInvocations);
    EXPECT_EQ(a.accelBusyUs, b.accelBusyUs);
    ASSERT_EQ(a.tasks.size(), b.tasks.size());
    for (size_t t = 0; t < a.tasks.size(); ++t) {
        EXPECT_EQ(a.tasks[t].energyMj, b.tasks[t].energyMj);
        EXPECT_EQ(a.tasks[t].sumLatencyUs, b.tasks[t].sumLatencyUs);
        EXPECT_EQ(a.tasks[t].variantStarts, b.tasks[t].variantStarts);
    }
}

/** Serve @p source in stream mode with admission off. */
sim::RunStats
serveStream(const hw::SystemConfig& system,
            const workload::Scenario& scenario,
            const cost::CostTable& costs, runner::SchedKind kind,
            const workload::ArrivalSource& source, double window_us,
            uint64_t seed)
{
    workload::StreamSource stream(source);
    feedStream(stream, source, window_us);
    serve::ServeConfig config;
    config.windowUs = window_us;
    config.seed = seed;
    serve::ServeLoop loop(system, scenario, costs, config);
    auto sched = runner::makeScheduler(kind);
    return loop.run(*sched, stream).stats;
}

TEST(Serve, StreamedGenerativeRunMatchesOfflineRun)
{
    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k1Ws2Os);
    const auto scenario =
        workload::makeScenario(workload::ScenarioPreset::ArCall, 0.7);
    cost::CostTable costs(system);
    for (const auto& t : scenario.tasks)
        costs.addModel(t.model);
    const double window_us = 1e6;
    const uint64_t seed = 11;

    // Offline: the classic batch run over the same FrameSource.
    const workload::FrameSource frames(scenario, seed);
    sim::SimConfig cfg;
    cfg.windowUs = window_us;
    cfg.seed = seed;
    cfg.arrivals = &frames;
    sim::Simulator simulator(system, scenario, costs, cfg);
    auto sched = runner::makeScheduler(runner::SchedKind::DreamFull);
    const auto offline = simulator.run(*sched);

    // Streamed: the same frames pushed one at a time through the
    // ingest queue (cascade children flow through the delegate).
    const auto streamed =
        serveStream(system, scenario, costs,
                    runner::SchedKind::DreamFull, frames, window_us,
                    seed);
    expectStatsBitIdentical(scenario, offline, streamed);
}

TEST(Serve, StreamedTraceReplayMatchesOfflineReplay)
{
    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k2Ws);
    const auto scenario = workload::makeScenario(
        workload::ScenarioPreset::VrGaming, 0.5);
    cost::CostTable costs(system);
    for (const auto& t : scenario.tasks)
        costs.addModel(t.model);
    const double window_us = 5e5;
    const uint64_t seed = 23;

    // Record a run, then re-load it the way dream_serve --replay
    // does (through the CSV round trip, not in-memory stats).
    auto sched = runner::makeScheduler(runner::SchedKind::Fcfs);
    const auto recorded = runner::runOnce(system, scenario, *sched,
                                          window_us, seed);
    const auto csv =
        runner::frameTraceCsv(recorded.stats, scenario);
    std::istringstream is(csv);
    const auto trace = runner::readFrameTraceCsv(is);
    const workload::ReplaySource replay(scenario, seed, trace);

    // Offline replay.
    sim::SimConfig cfg;
    cfg.windowUs = window_us;
    cfg.seed = seed;
    cfg.arrivals = &replay;
    sim::Simulator simulator(system, scenario, costs, cfg);
    auto sched_a = runner::makeScheduler(runner::SchedKind::Fcfs);
    const auto offline = simulator.run(*sched_a);

    // Stream replay must be bit-identical — the dream_serve
    // --verify-offline anchor.
    const auto streamed =
        serveStream(system, scenario, costs, runner::SchedKind::Fcfs,
                    replay, window_us, seed);
    expectStatsBitIdentical(scenario, offline, streamed);
    expectStatsBitIdentical(scenario, recorded.stats, streamed);
}

TEST(Serve, IncrementalApiMatchesRunWithArbitraryStepping)
{
    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k1Ws2Os);
    const auto scenario = workload::makeScenario(
        workload::ScenarioPreset::DroneOutdoor, 0.5);
    cost::CostTable costs(system);
    for (const auto& t : scenario.tasks)
        costs.addModel(t.model);
    const double window_us = 4e5;

    sim::SimConfig cfg;
    cfg.windowUs = window_us;
    cfg.seed = 5;
    auto sched_a = runner::makeScheduler(runner::SchedKind::Fcfs);
    sim::Simulator batch(system, scenario, costs, cfg);
    const auto offline = batch.run(*sched_a);

    // Same workload driven through the incremental API: each frame
    // offered right before the clock passes it, with interleaved
    // partial advances at ragged boundaries.
    const workload::FrameSource frames(scenario, cfg.seed);
    auto arrivals = frames.rootFrames(window_us);
    std::stable_sort(arrivals.begin(), arrivals.end(),
                     [](const auto& a, const auto& b) {
                         return a.arrivalUs < b.arrivalUs;
                     });
    auto sched_b = runner::makeScheduler(runner::SchedKind::Fcfs);
    sim::Simulator inc(system, scenario, costs, cfg);
    inc.beginStream(*sched_b);
    double step = 0.0;
    for (const auto& spec : arrivals) {
        // Ragged advances strictly below the next arrival.
        while (step + 7001.0 < spec.arrivalUs) {
            step += 7001.0;
            inc.advanceTo(step);
        }
        inc.offerArrival(spec);
    }
    const auto streamed = inc.finishStream();
    expectStatsBitIdentical(scenario, offline, streamed);
    EXPECT_EQ(inc.liveFrames(),
              size_t(std::count_if(
                  streamed.frames.begin(), streamed.frames.end(),
                  [](const sim::FrameRecord& fr) {
                      return !fr.dropped && !fr.isCompleted();
                  })));
}

TEST(Serve, OfferArrivalEnforcesOrdering)
{
    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k2Ws);
    const auto scenario =
        workload::makeScenario(workload::ScenarioPreset::ArCall);
    cost::CostTable costs(system);
    for (const auto& t : scenario.tasks)
        costs.addModel(t.model);
    sim::Simulator sim(system, scenario, costs, {});
    sched::FcfsScheduler fcfs;
    sim.beginStream(fcfs);

    workload::FrameSpec late;
    late.arrivalUs = 1000.0;
    late.path = scenario.tasks[0].model.layers;
    sim.offerArrival(late);
    workload::FrameSpec earlier = late;
    earlier.arrivalUs = 500.0;
    EXPECT_THROW(sim.offerArrival(earlier), std::invalid_argument);

    // Advancing past an arrival and then offering one behind the
    // clock is a contract violation too. Advance far enough that the
    // admitted frame's completion events have moved the clock.
    sim.advanceTo(1e6);
    ASSERT_GT(sim.nowUs(), late.arrivalUs + 1.0);
    workload::FrameSpec behind = late;
    behind.arrivalUs = (late.arrivalUs + sim.nowUs()) / 2.0;
    EXPECT_THROW(sim.offerArrival(behind), std::invalid_argument);
}

TEST(Serve, StreamSourceQueueSemantics)
{
    const auto scenario =
        workload::makeScenario(workload::ScenarioPreset::ArCall);
    const workload::FrameSource delegate(scenario, 1);
    workload::StreamSource stream(delegate);

    workload::FrameSpec f;
    f.arrivalUs = 10.0;
    stream.push(f);
    f.arrivalUs = 5.0;
    EXPECT_THROW(stream.push(f), std::invalid_argument);
    f.arrivalUs = 20.0;
    stream.push(f);
    EXPECT_EQ(stream.pending(), 2u);

    // rootFrames snapshots without consuming; drain consumes.
    EXPECT_EQ(stream.rootFrames(15.0).size(), 1u);
    EXPECT_EQ(stream.rootFrames(1e9).size(), 2u);
    EXPECT_EQ(stream.drain().size(), 2u);
    EXPECT_EQ(stream.pending(), 0u);

    stream.close();
    EXPECT_TRUE(stream.closed());
    EXPECT_THROW(stream.push(f), std::logic_error);
    EXPECT_TRUE(stream.waitDrain().empty());
}

TEST(Serve, AdmissionRejectsWhenQueueDepthExceeded)
{
    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k2Ws);
    workload::Scenario scenario;
    scenario.name = "burst";
    workload::TaskSpec task;
    task.model = test::toyModel("burst", 4);
    task.fps = 2000.0; // a 2 kHz burst the hardware cannot absorb
    scenario.tasks.push_back(task);
    cost::CostTable costs(system);
    costs.addModel(task.model);

    const double window_us = 5e4;
    workload::FrameSource frames(scenario, 3);
    workload::StreamSource stream(frames);
    feedStream(stream, frames, window_us);

    serve::ServeConfig config;
    config.windowUs = window_us;
    config.seed = 3;
    config.admission.maxQueueDepth = 4;
    serve::ServeLoop loop(system, scenario, costs, config);
    sched::FcfsScheduler fcfs;
    const auto result = loop.run(fcfs, stream);

    EXPECT_GT(result.admission.offered, 0u);
    EXPECT_GT(result.admission.rejected, 0u);
    EXPECT_EQ(result.admission.offered,
              result.admission.admitted + result.admission.degraded +
                  result.admission.rejected);
    // Rejected frames never enter the simulator.
    EXPECT_EQ(result.stats.frames.size(),
              size_t(result.admission.admitted +
                     result.admission.degraded));
}

TEST(Serve, AdmissionDegradePicksLightestVariant)
{
    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k2Ws);
    workload::Scenario scenario;
    scenario.name = "degrade";
    workload::TaskSpec task;
    task.model = test::toySupernet();
    scenario.tasks.push_back(task);
    cost::CostTable costs(system);
    costs.addModel(task.model);

    // Calibrate the bound so exactly one original-path frame fits:
    // the first offer admits, the second (same instant, no drain)
    // overloads and must degrade.
    double original_cost = 0.0;
    for (const auto& layer : task.model.layers)
        original_cost += costs.minLatencyUs(layer);
    ASSERT_GT(original_cost, 0.0);

    serve::AdmissionConfig config;
    config.maxBacklogUs = 1.5 * original_cost;
    config.policy = serve::OverloadPolicy::Degrade;
    serve::AdmissionController gate(config, scenario, costs);

    workload::FrameSpec frame;
    frame.task = 0;
    frame.path = task.model.layers;
    EXPECT_EQ(gate.offer(frame, 0.0, 0),
              serve::AdmissionDecision::Admit);

    workload::FrameSpec second;
    second.task = 0;
    second.path = task.model.layers;
    EXPECT_EQ(gate.offer(second, 0.0, 1),
              serve::AdmissionDecision::Degrade);
    // The degraded path is the lightest variant, not the original.
    const auto light = task.model.variantPath(1);
    ASSERT_EQ(second.path.size(), light.size());
    for (size_t i = 0; i < light.size(); ++i)
        EXPECT_EQ(second.path[i].name, light[i].name) << i;
    EXPECT_LT(models::totalMacs(second.path),
              models::totalMacs(task.model.layers));
    EXPECT_EQ(gate.stats().degraded, 1u);

    // A non-supernet task cannot degrade: it falls back to reject.
    workload::Scenario plain;
    plain.name = "plain";
    workload::TaskSpec ptask;
    ptask.model = test::toyModel();
    plain.tasks.push_back(ptask);
    cost::CostTable pcosts(system);
    pcosts.addModel(ptask.model);
    double plain_cost = 0.0;
    for (const auto& layer : ptask.model.layers)
        plain_cost += pcosts.minLatencyUs(layer);
    ASSERT_GT(plain_cost, 0.0);
    serve::AdmissionConfig pconfig = config;
    pconfig.maxBacklogUs = 1.5 * plain_cost;
    serve::AdmissionController pgate(pconfig, plain, pcosts);
    workload::FrameSpec pframe;
    pframe.task = 0;
    pframe.path = ptask.model.layers;
    EXPECT_EQ(pgate.offer(pframe, 0.0, 0),
              serve::AdmissionDecision::Admit);
    workload::FrameSpec pframe2 = pframe;
    EXPECT_EQ(pgate.offer(pframe2, 0.0, 1),
              serve::AdmissionDecision::Reject);
}

TEST(Serve, AdmissionBacklogDrainsAtCapacity)
{
    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k2Ws);
    workload::Scenario scenario;
    scenario.name = "drain";
    workload::TaskSpec task;
    task.model = test::toyModel();
    scenario.tasks.push_back(task);
    cost::CostTable costs(system);
    costs.addModel(task.model);

    serve::AdmissionConfig config;
    config.maxBacklogUs = 1e9; // never rejects; observe the backlog
    serve::AdmissionController gate(config, scenario, costs);
    workload::FrameSpec frame;
    frame.task = 0;
    frame.path = task.model.layers;
    gate.offer(frame, 0.0, 0);
    const double backlog = gate.backlogUs();
    EXPECT_GT(backlog, 0.0);

    const double accels =
        double(system.accelerators.size());
    gate.advanceTo(backlog / (2.0 * accels));
    EXPECT_NEAR(gate.backlogUs(), backlog / 2.0, 1e-9 * backlog);
    gate.advanceTo(backlog); // well past full drain
    EXPECT_EQ(gate.backlogUs(), 0.0);
}

TEST(Serve, RollingQuantilesMatchExactHistogram)
{
    obs::RollingQuantileWindow window(1e9);
    obs::LatencyHistogram exact;
    // A deterministic, unsorted sample set with duplicates.
    uint64_t x = 88172645463325252ull;
    for (int i = 0; i < 500; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const double v = double(x % 100000) / 7.0;
        window.record(double(i), v);
        exact.record(v);
    }
    ASSERT_EQ(window.count(), exact.count());
    for (const double q :
         {0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
        // Bit-identical, not approximately equal: the rolling window
        // delegates to the same interpolation rule.
        EXPECT_EQ(window.quantile(q), exact.quantile(q)) << q;
    }
    EXPECT_EQ(window.mean(), exact.mean());
}

TEST(Serve, RollingWindowEvictsAgedSamples)
{
    obs::RollingQuantileWindow window(100.0);
    window.record(0.0, 1.0);
    window.record(50.0, 2.0);
    EXPECT_EQ(window.count(), 2u);
    // record() advances time before pushing: at t=100 the cutoff is
    // 100-100 = 0 and samples at t <= cutoff leave, so the t=0 sample
    // is evicted exactly at the span boundary.
    window.record(100.0, 3.0);
    EXPECT_EQ(window.count(), 2u);
    window.advanceTo(100.0);
    EXPECT_EQ(window.count(), 2u);
    window.advanceTo(149.0);
    EXPECT_EQ(window.count(), 2u);
    window.advanceTo(151.0);
    EXPECT_EQ(window.count(), 1u);
    // Time never moves backwards.
    window.advanceTo(0.0);
    EXPECT_EQ(window.count(), 1u);
    window.advanceTo(1e6);
    EXPECT_TRUE(window.empty());
    EXPECT_TRUE(std::isnan(window.quantile(0.5)));

    obs::RollingEventCounter counter(100.0);
    counter.record(0.0);
    counter.record(90.0);
    EXPECT_EQ(counter.count(), 2u);
    counter.advanceTo(120.0);
    EXPECT_EQ(counter.count(), 1u);
    counter.advanceTo(500.0);
    EXPECT_EQ(counter.count(), 0u);
}

TEST(Serve, RollingSnapshotsAreDeterministicAndOrdered)
{
    const auto system = hw::makeSystem(hw::SystemPreset::Sys4k1Ws2Os);
    const auto scenario =
        workload::makeScenario(workload::ScenarioPreset::ArCall);
    cost::CostTable costs(system);
    for (const auto& t : scenario.tasks)
        costs.addModel(t.model);
    const double window_us = 6e5;

    const workload::FrameSource frames(scenario, 9);
    const auto runServe = [&]() {
        workload::StreamSource stream(frames);
        feedStream(stream, frames, window_us);
        serve::ServeConfig config;
        config.windowUs = window_us;
        config.seed = 9;
        config.reportIntervalUs = 1e5;
        config.rollingSpanUs = 2e5;
        serve::ServeLoop loop(system, scenario, costs, config);
        sched::FcfsScheduler fcfs;
        return loop.run(fcfs, stream);
    };
    const auto a = runServe();
    const auto b = runServe();

    // 5 interval reports (1e5..5e5) plus the final window report.
    ASSERT_EQ(a.snapshots.size(), 6u);
    for (size_t i = 1; i < a.snapshots.size(); ++i)
        EXPECT_GT(a.snapshots[i].tUs, a.snapshots[i - 1].tUs);
    EXPECT_EQ(a.snapshots.back().tUs, window_us);
    ASSERT_EQ(a.snapshots.size(), b.snapshots.size());
    for (size_t i = 0; i < a.snapshots.size(); ++i) {
        EXPECT_EQ(a.snapshots[i].queueDepth,
                  b.snapshots[i].queueDepth);
        EXPECT_EQ(a.snapshots[i].windowSamples,
                  b.snapshots[i].windowSamples);
        // Bit-equal or both NaN.
        EXPECT_TRUE(a.snapshots[i].p99Us == b.snapshots[i].p99Us ||
                    (std::isnan(a.snapshots[i].p99Us) &&
                     std::isnan(b.snapshots[i].p99Us)));
    }
    EXPECT_GT(a.snapshots.back().windowSamples, 0u);
}

} // anonymous namespace
} // namespace dream
