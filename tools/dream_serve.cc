/**
 * @file
 * dream_serve: the online serving front end. Drives N per-device
 * DREAM instances (serve::Cluster) in streaming mode — arrivals are
 * pushed into a workload::StreamSource one frame at a time, a
 * serve::Dispatcher routes each session to a device, every device's
 * event loop advances incrementally as frames land, an optional
 * admission gate rejects or degrades overload per device, and
 * rolling p50/p99/SLO telemetry prints per report interval and lands
 * in the metrics JSON that dream_prof reads. A single device
 * (--devices 1, the default) is the N=1 case of the same code path.
 *
 * Three feeds:
 *
 *   dream_serve --replay trace.csv [--verify-offline]
 *     Re-drives a recorded trace (--record-trace on any bench) in
 *     stream mode. --verify-offline re-runs the same trace through
 *     the offline ReplaySource path and exits 1 unless the final
 *     RunStats match bit for bit — the stream-mode determinism
 *     anchor, gated in CI (single-device only: an N-device run has
 *     no single offline simulator to anchor to).
 *
 *   dream_serve --gen default --seed 11 --rate-scale 1.5
 *     Serves a ScenarioGenerator workload (or a hard-scenario suite
 *     entry: --gen scenarios/hard_v1.json --entry NAME) for
 *     sustained-load soak runs; --rate-scale multiplies every task's
 *     FPS.
 *
 *   dream_serve --ingest - [--gen SPEC]
 *     Reads line-delimited arrival records from stdin — the first
 *     step toward a socket/IPC feed. Each line is
 *     "task frame_idx arrival_us" (whitespace- or comma-separated;
 *     '#' comments and blank lines skipped), materialised through
 *     the generative FrameSource of the --gen scenario (default:
 *     'default') and pushed onto StreamSource::push. Out-of-order
 *     arrivals or unknown tasks are clean errors (exit 2), never
 *     aborts.
 *
 * Exit codes: 0 success, 1 verify-offline drift, 2 usage/load error.
 */

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "costmodel/cost_table_cache.h"
#include "engine/result_sink.h"
#include "engine/engine.h"
#include "hw/system.h"
#include "obs/metrics.h"
#include "runner/experiment.h"
#include "runner/trace.h"
#include "serve/cluster.h"
#include "serve/dispatcher.h"
#include "serve/serve_loop.h"
#include "workload/replay_source.h"
#include "workload/scenario_gen.h"
#include "workload/scenario_suite.h"
#include "workload/stream_source.h"

using namespace dream;

namespace {

struct Options {
    std::string replayFile;
    bool verifyOffline = false;
    std::string genSpec;
    std::string ingest;
    size_t devices = 1;
    serve::RouterPolicy router =
        serve::RouterPolicy::FinishTimeFairness;
    std::string entry;
    uint64_t seed = 11;
    double rateScale = 1.0;
    std::string system;
    std::string scheduler;
    double windowUs = 0.0; // 0 = feed default
    serve::AdmissionConfig admission;
    double reportIntervalUs = 2e5;
    double rollingWindowUs = 5e5;
    std::string metricsFile;
    std::string metricsFullFile;
    std::string outFile;
    bool quiet = false;
};

void
printUsage(const char* prog)
{
    std::printf(
        "usage: %s (--replay FILE | --gen SPEC | --ingest -) "
        "[options]\n"
        "feeds:\n"
        "  --replay FILE    recorded *.trace.csv (--record-trace on\n"
        "                   any bench); served in stream mode under\n"
        "                   the recorded identity\n"
        "  --gen SPEC       'default' (stock generator spec) or a\n"
        "                   hard-scenario suite JSON path\n"
        "  --ingest -       line-delimited arrivals from stdin\n"
        "                   ('task frame_idx arrival_us'), onto the\n"
        "                   --gen scenario (default: 'default')\n"
        "cluster:\n"
        "  --devices N      per-device DREAM instances (default 1)\n"
        "  --router POLICY  round_robin | least_loaded |\n"
        "                   finish_time_fairness (default)\n"
        "replay options:\n"
        "  --verify-offline re-run the offline ReplaySource replay\n"
        "                   and exit 1 unless RunStats is\n"
        "                   bit-identical (admission must be off,\n"
        "                   --devices 1 only)\n"
        "gen options:\n"
        "  --entry NAME     suite entry to serve (default: first)\n"
        "  --seed S         generator + simulation seed "
        "(default 11)\n"
        "  --rate-scale X   multiply every task's FPS by X\n"
        "  --system NAME    system preset (default: suite's, else "
        "4K-2WS)\n"
        "  --scheduler NAME scheduler (default DREAM-Full)\n"
        "  --window US      execution window (default: suite's, "
        "else 2e6)\n"
        "admission control (off unless a bound is set; per device):\n"
        "  --max-queue N    reject when N frames are live\n"
        "  --max-backlog-us X\n"
        "                   bound the projected best-case backlog\n"
        "  --overload P     reject|degrade (default reject)\n"
        "telemetry/output:\n"
        "  --report-interval-us X\n"
        "                   rolling report spacing (default 2e5)\n"
        "  --rolling-window-us X\n"
        "                   rolling window span (default 5e5)\n"
        "  --metrics FILE   canonical metrics JSON (volatile "
        "excluded)\n"
        "  --metrics-full FILE\n"
        "                   metrics JSON including volatile "
        "metrics\n"
        "  --out FILE       one-row result CSV (replay rows carry "
        "the\n                   recorded identity, for dream_diff)\n"
        "  --quiet          suppress per-report lines\n",
        prog);
}

[[noreturn]] void
fail(const std::string& what)
{
    std::fprintf(stderr, "dream_serve: %s\n", what.c_str());
    std::exit(2);
}

double
parseDouble(const std::string& value, const char* flag)
{
    char* end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (end != value.c_str() + value.size() || !std::isfinite(v))
        fail(std::string("malformed ") + flag + " value '" + value +
             "'");
    return v;
}

uint64_t
parseUnsigned(const std::string& value, const char* flag)
{
    const bool digits =
        !value.empty() &&
        value.find_first_not_of("0123456789") == std::string::npos;
    errno = 0;
    const auto v = std::strtoull(value.c_str(), nullptr, 10);
    if (!digits || errno == ERANGE)
        fail(std::string("malformed ") + flag + " value '" + value +
             "'");
    return v;
}

Options
parseArgs(int argc, char** argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&](const char* flag) -> std::string {
            if (i + 1 >= argc)
                fail(std::string(flag) + " needs a value");
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            printUsage(argv[0]);
            std::exit(0);
        } else if (arg == "--replay") {
            opts.replayFile = next("--replay");
        } else if (arg == "--verify-offline") {
            opts.verifyOffline = true;
        } else if (arg == "--gen") {
            opts.genSpec = next("--gen");
        } else if (arg == "--ingest") {
            opts.ingest = next("--ingest");
            if (opts.ingest != "-")
                fail("--ingest supports only '-' (stdin) for now");
        } else if (arg == "--devices") {
            opts.devices = size_t(
                parseUnsigned(next("--devices"), "--devices"));
            if (opts.devices == 0)
                fail("--devices must be at least 1");
        } else if (arg == "--router") {
            const std::string name = next("--router");
            if (!serve::parseRouterPolicy(name, &opts.router))
                fail("unknown --router '" + name +
                     "' (round_robin | least_loaded | "
                     "finish_time_fairness)");
        } else if (arg == "--entry") {
            opts.entry = next("--entry");
        } else if (arg == "--seed") {
            opts.seed = parseUnsigned(next("--seed"), "--seed");
        } else if (arg == "--rate-scale") {
            opts.rateScale =
                parseDouble(next("--rate-scale"), "--rate-scale");
            if (opts.rateScale <= 0.0)
                fail("--rate-scale must be positive");
        } else if (arg == "--system") {
            opts.system = next("--system");
        } else if (arg == "--scheduler") {
            opts.scheduler = next("--scheduler");
        } else if (arg == "--window") {
            opts.windowUs = parseDouble(next("--window"), "--window");
            if (opts.windowUs <= 0.0)
                fail("--window must be positive");
        } else if (arg == "--max-queue") {
            opts.admission.maxQueueDepth = size_t(
                parseUnsigned(next("--max-queue"), "--max-queue"));
        } else if (arg == "--max-backlog-us") {
            opts.admission.maxBacklogUs = parseDouble(
                next("--max-backlog-us"), "--max-backlog-us");
        } else if (arg == "--overload") {
            const std::string policy = next("--overload");
            if (policy == "reject")
                opts.admission.policy = serve::OverloadPolicy::Reject;
            else if (policy == "degrade")
                opts.admission.policy =
                    serve::OverloadPolicy::Degrade;
            else
                fail("--overload must be 'reject' or 'degrade'");
        } else if (arg == "--report-interval-us") {
            opts.reportIntervalUs =
                parseDouble(next("--report-interval-us"),
                            "--report-interval-us");
        } else if (arg == "--rolling-window-us") {
            opts.rollingWindowUs = parseDouble(
                next("--rolling-window-us"), "--rolling-window-us");
            if (opts.rollingWindowUs <= 0.0)
                fail("--rolling-window-us must be positive");
        } else if (arg == "--metrics") {
            opts.metricsFile = next("--metrics");
        } else if (arg == "--metrics-full") {
            opts.metricsFullFile = next("--metrics-full");
        } else if (arg == "--out") {
            opts.outFile = next("--out");
        } else if (arg == "--quiet") {
            opts.quiet = true;
        } else {
            printUsage(argv[0]);
            fail("unknown flag '" + arg + "'");
        }
    }
    if (!opts.ingest.empty()) {
        if (!opts.replayFile.empty())
            fail("--ingest feeds the generative scenario; it cannot "
                 "be combined with --replay");
        if (opts.genSpec.empty())
            opts.genSpec = "default";
    } else if (opts.replayFile.empty() == opts.genSpec.empty()) {
        fail("exactly one of --replay, --gen and --ingest is "
             "required");
    }
    if (opts.verifyOffline && opts.replayFile.empty())
        fail("--verify-offline requires --replay");
    if (opts.verifyOffline && opts.admission.enabled())
        fail("--verify-offline requires admission control off "
             "(admitted load must match the recording)");
    if (opts.verifyOffline && opts.devices != 1)
        fail("--verify-offline requires --devices 1 (an N-device "
             "run has no single offline run to anchor to)");
    return opts;
}

/** The resolved workload one serve session runs. */
struct Session {
    workload::Scenario scenario;
    hw::SystemConfig system;
    std::string systemName;
    runner::SchedKind scheduler = runner::SchedKind::DreamFull;
    uint64_t seed = 11;
    double windowUs = runner::kDefaultWindowUs;
    size_t index = 0; ///< result-row index (recorded for replays)
    /** Replay feed (null for the generative feed). */
    std::shared_ptr<const workload::FrameTrace> trace;
};

hw::SystemPreset
resolveSystem(const std::string& name)
{
    for (const auto preset : hw::allSystemPresets()) {
        if (hw::toString(preset) == name)
            return preset;
    }
    fail("unknown system preset '" + name + "'");
}

runner::SchedKind
resolveScheduler(const std::string& name)
{
    for (const auto kind : runner::allSchedKinds()) {
        if (runner::toString(kind) == name)
            return kind;
    }
    fail("unknown scheduler '" + name + "'");
}

/** Resolve a recorded scenario name ("AR_Call", "VR_Gaming@p0.9"),
 *  mirroring bench/trace_replay. */
workload::Scenario
resolveScenario(const std::string& name)
{
    std::string base = name;
    double cascade_prob = 0.5;
    const size_t at = name.rfind("@p");
    if (at != std::string::npos) {
        char* end = nullptr;
        cascade_prob = std::strtod(name.c_str() + at + 2, &end);
        if (end == name.c_str() + name.size())
            base = name.substr(0, at);
        else
            cascade_prob = 0.5; // "@p" was part of the name itself
    }
    for (const auto preset : workload::allScenarioPresets()) {
        if (workload::toString(preset) == base)
            return workload::makeScenario(preset, cascade_prob);
    }
    fail("cannot replay scenario '" + name +
         "': not a Table 3 preset (generated scenarios are not "
         "replayable from metadata)");
}

std::string
requireMeta(const workload::FrameTrace& trace,
            const std::string& file, const std::string& key)
{
    const std::string value = trace.metaValue(key);
    if (value.empty())
        fail(file + ": metadata is missing '" + key +
             "' (was the trace recorded with --record-trace?)");
    return value;
}

Session
loadReplaySession(const Options& opts)
{
    Session s;
    auto trace = std::make_shared<workload::FrameTrace>();
    try {
        *trace = runner::readFrameTraceCsv(opts.replayFile);
    } catch (const std::runtime_error& e) {
        fail(e.what());
    }
    const std::string& file = opts.replayFile;
    s.scenario =
        resolveScenario(requireMeta(*trace, file, "scenario"));
    s.systemName = requireMeta(*trace, file, "system");
    s.system = hw::makeSystem(resolveSystem(s.systemName));
    s.scheduler =
        resolveScheduler(requireMeta(*trace, file, "scheduler"));
    if (!trace->metaValue("params").empty())
        fail(file + ": parameterised grid points (params=" +
             trace->metaValue("params") +
             ") are not replayable from metadata");
    s.seed = parseUnsigned(requireMeta(*trace, file, "seed"), "seed");
    s.windowUs = parseDouble(requireMeta(*trace, file, "window_us"),
                             "window_us");
    if (s.windowUs <= 0.0)
        fail(file + ": malformed window_us metadata");
    s.index = size_t(
        parseUnsigned(requireMeta(*trace, file, "index"), "index"));
    s.trace = std::move(trace);
    return s;
}

Session
loadGenSession(const Options& opts)
{
    Session s;
    workload::ScenarioGenSpec spec;
    hw::SystemPreset system = hw::SystemPreset::Sys4k2Ws;
    s.windowUs = runner::kDefaultWindowUs;
    uint64_t gen_seed = opts.seed;

    if (opts.genSpec != "default") {
        workload::HardScenarioSuite suite;
        try {
            suite = workload::loadHardScenarioSuite(opts.genSpec);
        } catch (const std::runtime_error& e) {
            fail(e.what());
        }
        if (suite.entries.empty())
            fail(opts.genSpec + ": suite has no entries");
        const workload::HardScenarioEntry* entry =
            &suite.entries.front();
        if (!opts.entry.empty()) {
            entry = nullptr;
            for (const auto& e : suite.entries) {
                if (e.name == opts.entry)
                    entry = &e;
            }
            if (!entry)
                fail(opts.genSpec + ": no entry named '" +
                     opts.entry + "'");
        }
        spec = entry->spec;
        gen_seed = entry->genSeed;
        system = resolveSystem(suite.system);
        s.windowUs = suite.windowUs;
    } else if (!opts.entry.empty()) {
        fail("--entry requires a suite JSON --gen SPEC");
    }

    if (!opts.system.empty())
        system = resolveSystem(opts.system);
    if (opts.windowUs > 0.0)
        s.windowUs = opts.windowUs;
    s.systemName = hw::toString(system);
    s.system = hw::makeSystem(system);
    s.scheduler = opts.scheduler.empty()
                      ? runner::SchedKind::DreamFull
                      : resolveScheduler(opts.scheduler);
    s.seed = opts.seed;
    s.scenario = workload::ScenarioGenerator(spec).generate(gen_seed);
    if (opts.rateScale != 1.0) {
        for (auto& task : s.scenario.tasks)
            task.fps *= opts.rateScale;
        char suffix[32];
        std::snprintf(suffix, sizeof suffix, "@x%g", opts.rateScale);
        s.scenario.name += suffix;
    }
    return s;
}

/** Push every root frame of @p source, in arrival order, and close
 *  the stream — the in-process stand-in for a live ingest feed. */
void
feedStream(workload::StreamSource& stream,
           const workload::ArrivalSource& source, double window_us)
{
    auto frames = source.rootFrames(window_us);
    std::stable_sort(frames.begin(), frames.end(),
                     [](const auto& a, const auto& b) {
                         return a.arrivalUs < b.arrivalUs;
                     });
    for (auto& frame : frames)
        stream.push(std::move(frame));
    stream.close();
}

/**
 * The stdin ingest frontend: one arrival per line, materialised
 * through the generative FrameSource so paths and cascade gates are
 * the deterministic per-frame draws. Malformed lines, unknown or
 * dependent tasks, and out-of-order arrivals are reported with their
 * line number and exit 2 — StreamSource's ordering contract surfaces
 * as a clean error, never an abort.
 */
void
feedFromStdin(workload::StreamSource& stream,
              const workload::FrameSource& source)
{
    std::string line;
    size_t lineno = 0;
    while (std::getline(std::cin, line)) {
        ++lineno;
        std::replace(line.begin(), line.end(), ',', ' ');
        std::istringstream in(line);
        long task = 0;
        long frame_idx = 0;
        double arrival_us = 0.0;
        std::string head;
        if (!(in >> head) || head[0] == '#')
            continue; // blank or comment line
        char* end = nullptr;
        errno = 0;
        task = std::strtol(head.c_str(), &end, 10);
        std::string trailing;
        if (end != head.c_str() + head.size() || errno == ERANGE ||
            !(in >> frame_idx >> arrival_us) || (in >> trailing))
            fail("stdin:" + std::to_string(lineno) +
                 ": expected 'task frame_idx arrival_us', got '" +
                 line + "'");
        try {
            stream.push(source.rootFrame(workload::TaskId(task),
                                         int(frame_idx),
                                         arrival_us));
        } catch (const std::exception& e) {
            fail("stdin:" + std::to_string(lineno) + ": " +
                 e.what());
        }
    }
    stream.close();
}

engine::RunRecord
makeRecord(const Session& session, const sim::RunStats& stats)
{
    engine::RunRecord record;
    record.index = session.index;
    record.scenario = session.scenario.name;
    record.system = session.systemName;
    record.scheduler = runner::toString(session.scheduler);
    record.seed = session.seed;
    record.windowUs = session.windowUs;
    engine::fillMetrics(record, stats);
    return record;
}

/** Exit-1 drift check: stream-mode stats vs the offline replay. */
bool
verifyOffline(const Session& session,
              const workload::ReplaySource& replay,
              const sim::RunStats& streamed)
{
    sim::SimConfig config;
    config.windowUs = session.windowUs;
    config.seed = session.seed;
    config.arrivals = &replay;
    sim::Simulator sim(session.system, session.scenario,
                       *cost::acquireCostTable(session.system,
                                               session.scenario),
                       config);
    const auto sched = runner::makeScheduler(session.scheduler);
    const sim::RunStats offline = sim.run(*sched);

    // Byte-level comparison through the canonical serialisations:
    // the per-frame trace CSV covers every admitted frame's exact
    // doubles; the result row covers the aggregates.
    const std::string stream_frames =
        runner::frameTraceCsv(streamed, session.scenario);
    const std::string offline_frames =
        runner::frameTraceCsv(offline, session.scenario);
    std::ostringstream stream_row, offline_row;
    {
        engine::CsvSink a(stream_row);
        a.write(makeRecord(session, streamed));
        a.close();
        engine::CsvSink b(offline_row);
        b.write(makeRecord(session, offline));
        b.close();
    }
    const bool frames_ok = stream_frames == offline_frames;
    const bool rows_ok = stream_row.str() == offline_row.str();
    if (frames_ok && rows_ok) {
        std::printf("verify-offline OK: %s (%zu frames, row and "
                    "frame trace bit-identical)\n",
                    session.scenario.name.c_str(),
                    streamed.frames.size());
        return true;
    }
    std::fprintf(stderr,
                 "dream_serve: verify-offline DRIFT: %s (frame "
                 "trace %s, result row %s)\n",
                 session.scenario.name.c_str(),
                 frames_ok ? "identical" : "differs",
                 rows_ok ? "identical" : "differs");
    return false;
}

} // anonymous namespace

int
main(int argc, char** argv)
{
    const Options opts = parseArgs(argc, argv);
    const Session session = opts.replayFile.empty()
                                ? loadGenSession(opts)
                                : loadReplaySession(opts);

    obs::MetricsRegistry metrics;
    const bool want_metrics =
        !opts.metricsFile.empty() || !opts.metricsFullFile.empty();
    const auto costs = cost::acquireCostTable(
        session.system, session.scenario,
        want_metrics ? &metrics : nullptr);

    serve::ClusterConfig cluster_config;
    cluster_config.devices = opts.devices;
    cluster_config.router = opts.router;
    serve::ServeConfig& config = cluster_config.serve;
    config.windowUs = session.windowUs;
    config.seed = session.seed;
    config.reportIntervalUs = opts.reportIntervalUs;
    config.rollingSpanUs = opts.rollingWindowUs;
    config.admission = opts.admission;
    config.metrics = want_metrics ? &metrics : nullptr;
    config.log = opts.quiet ? nullptr : &std::cout;

    // The feed: replay re-injects the recorded arrivals; gen
    // materialises the scaled generative workload; ingest reads
    // stdin. Either way the frames flow through the same intake
    // StreamSource, which the cluster demuxes per device.
    std::unique_ptr<workload::ReplaySource> replay;
    std::unique_ptr<workload::FrameSource> generative;
    const workload::ArrivalSource* delegate = nullptr;
    if (session.trace) {
        replay = std::make_unique<workload::ReplaySource>(
            session.scenario, session.seed, *session.trace);
        delegate = replay.get();
    } else {
        generative = std::make_unique<workload::FrameSource>(
            session.scenario, session.seed);
        delegate = generative.get();
    }

    workload::StreamSource intake(*delegate);
    if (!opts.ingest.empty())
        feedFromStdin(intake, *generative);
    else
        feedStream(intake, *delegate, session.windowUs);

    serve::Cluster cluster(session.system, session.scenario, *costs,
                           cluster_config);
    serve::ClusterResult result;
    try {
        result = cluster.run(
            [&] { return runner::makeScheduler(session.scheduler); },
            intake);
    } catch (const std::exception& e) {
        fail(e.what());
    }

    const engine::RunRecord record = makeRecord(session, result.stats);
    if (opts.devices > 1) {
        for (size_t k = 0; k < result.devices.size(); ++k) {
            const serve::ServeResult& device = result.devices[k];
            const double ratio = result.fairnessRatio[k];
            std::printf("[serve] dev%zu: frames=%llu "
                        "rejected=%llu degraded=%llu fairness=%s\n",
                        k,
                        (unsigned long long)
                            device.stats.totalFrames(),
                        (unsigned long long)
                            device.admission.rejected,
                        (unsigned long long)
                            device.admission.degraded,
                        std::isfinite(ratio)
                            ? std::to_string(ratio).c_str()
                            : "n/a");
        }
        std::printf("[serve] cluster: devices=%zu router=%s "
                    "fairness_spread=%.4f\n",
                    result.devices.size(),
                    serve::toString(cluster_config.router).c_str(),
                    result.fairnessSpread);
    }
    std::printf("[serve] done: %s/%s/%s seed=%llu frames=%llu "
                "violated=%llu dropped=%llu rejected=%llu "
                "degraded=%llu uxcost=%.4f\n",
                record.scenario.c_str(), record.system.c_str(),
                record.scheduler.c_str(),
                (unsigned long long) record.seed,
                (unsigned long long) record.totalFrames,
                (unsigned long long) record.violatedFrames,
                (unsigned long long) record.droppedFrames,
                (unsigned long long) result.admission.rejected,
                (unsigned long long) result.admission.degraded,
                record.uxCost);

    if (!opts.outFile.empty()) {
        engine::CsvSink sink(opts.outFile);
        sink.write(record);
        sink.close();
    }
    const auto dumpMetrics = [&](const std::string& path,
                                 bool include_volatile) {
        if (path.empty())
            return;
        std::ofstream out(path);
        if (!out.is_open())
            fail("cannot open metrics file: " + path);
        metrics.writeJson(out, include_volatile);
    };
    dumpMetrics(opts.metricsFile, false);
    dumpMetrics(opts.metricsFullFile, true);

    if (opts.verifyOffline &&
        !verifyOffline(session, *replay, result.stats))
        return 1;
    return 0;
}
