/**
 * @file
 * dream_diff: compare two result files from the same grid ("same
 * grid, two builds, same results" — the CI regression gate). Rows
 * are keyed by grid point; value columns compare numerically under
 * global or per-column absolute/relative tolerances. Each input may
 * be a result CSV or a `--json` bench run (sniffed from the
 * content), and the two formats mix freely — a JSON candidate diffs
 * against a CSV baseline.
 *
 * Exit codes: 0 = no differences (always 0 without --fail-on-diff),
 * 1 = differences found and --fail-on-diff given, 2 = usage or
 * input error.
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <string>

#include "engine/result_sink.h"
#include "tools/csv_diff.h"
#include "tools/json_result.h"

using namespace dream;

namespace {

void
printUsage(const char* prog)
{
    std::printf(
        "usage: %s [options] BASELINE CANDIDATE\n"
        "  --abs-tol V          global absolute tolerance "
        "(default 0)\n"
        "  --rel-tol V          global relative tolerance "
        "(default 0)\n"
        "  --tol COL=ABS[:REL]  per-column tolerance override\n"
        "  --fail-on-diff       exit 1 when differences are found\n"
        "  --json               machine-readable JSON summary\n"
        "compares result files (CSV or --json bench output, sniffed "
        "from the\ncontent; formats may mix) keyed by grid point "
        "(scenario/system/\nscheduler/params/seed); reports "
        "added/removed grid points and\nout-of-tolerance cells. "
        "NaN compares equal to NaN.\n",
        prog);
}

bool
parseDoubleArg(const char* text, double* out)
{
    char* end = nullptr;
    *out = std::strtod(text, &end);
    return end != text && *end == '\0' && *out >= 0.0;
}

/** Parse "COL=ABS[:REL]" into a per-column tolerance entry. */
bool
parseColumnTol(const std::string& spec,
               std::pair<std::string, tools::Tolerance>* out)
{
    const size_t eq = spec.find('=');
    if (eq == 0 || eq == std::string::npos)
        return false;
    out->first = spec.substr(0, eq);
    const std::string values = spec.substr(eq + 1);
    const size_t colon = values.find(':');
    out->second = {};
    if (colon == std::string::npos)
        return parseDoubleArg(values.c_str(), &out->second.abs);
    return parseDoubleArg(values.substr(0, colon).c_str(),
                          &out->second.abs) &&
           parseDoubleArg(values.substr(colon + 1).c_str(),
                          &out->second.rel);
}

} // anonymous namespace

int
main(int argc, char** argv)
{
    tools::DiffOptions options;
    bool fail_on_diff = false;
    bool json = false;
    std::string path_a, path_b;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--abs-tol" && i + 1 < argc) {
            if (!parseDoubleArg(argv[++i],
                                &options.tolerance.abs)) {
                std::fprintf(stderr, "invalid --abs-tol value: %s\n",
                             argv[i]);
                return 2;
            }
        } else if (arg == "--rel-tol" && i + 1 < argc) {
            if (!parseDoubleArg(argv[++i],
                                &options.tolerance.rel)) {
                std::fprintf(stderr, "invalid --rel-tol value: %s\n",
                             argv[i]);
                return 2;
            }
        } else if (arg == "--tol" && i + 1 < argc) {
            std::pair<std::string, tools::Tolerance> tol;
            if (!parseColumnTol(argv[++i], &tol)) {
                std::fprintf(stderr,
                             "invalid --tol value (want "
                             "COL=ABS[:REL]): %s\n",
                             argv[i]);
                return 2;
            }
            options.columnTolerances.push_back(std::move(tol));
        } else if (arg == "--fail-on-diff") {
            fail_on_diff = true;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--help" || arg == "-h") {
            printUsage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown argument: %s\n",
                         arg.c_str());
            printUsage(argv[0]);
            return 2;
        } else if (path_a.empty()) {
            path_a = arg;
        } else if (path_b.empty()) {
            path_b = arg;
        } else {
            std::fprintf(stderr, "too many positional arguments\n");
            printUsage(argv[0]);
            return 2;
        }
    }
    if (path_b.empty()) {
        std::fprintf(stderr, "need two CSVs to compare\n");
        printUsage(argv[0]);
        return 2;
    }

    try {
        const auto a = tools::readResultTable(path_a);
        const auto b = tools::readResultTable(path_b);
        const auto result = tools::diffResultCsvs(a, b, options);
        if (json)
            tools::printDiffJson(result, std::cout);
        else
            tools::printDiffSummary(result, std::cout);
        if (!result.identical() && fail_on_diff)
            return 1;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "dream_diff: %s\n", e.what());
        return 2;
    }
    return 0;
}
