/**
 * @file
 * dream_prof: read telemetry event traces (`bench --trace-events
 * DIR`, Chrome trace-event JSON) and print per-accelerator
 * utilization and scheduler decision-latency tables per grid point.
 * `--check` validates only (array shape, required fields,
 * non-decreasing timestamps per track) and prints one OK line per
 * file — the CI trace gate. Inputs are trace files or directories
 * (scanned for *.trace.json). Exits 0 when every input is valid, 1
 * on any validation/parse failure, 2 on usage errors.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "tools/trace_prof.h"

using namespace dream;

namespace {

void
printUsage(const char* prog)
{
    std::printf("usage: %s [--check] [--metrics FILE] "
                "[PATH ...]\n"
                "  PATH      a .trace.json file, or a directory "
                "scanned for\n            *.trace.json (the layout "
                "bench --trace-events DIR writes)\n"
                "  --check   validate only: parse every file, check "
                "the event\n            shape and per-track "
                "timestamp monotonicity, print one\n            OK "
                "line per file; exit 1 on the first failure\n"
                "  --metrics FILE\n"
                "            a metrics JSON dump (bench "
                "--metrics-full F or\n            dream_serve "
                "--metrics F); prints the cost-table cache\n"
                "            efficiency table and, for serve dumps, "
                "the rolling\n            latency/SLO telemetry "
                "table\n"
                "without --check, prints per-accelerator utilization "
                "and\nscheduler decision-latency tables for every "
                "point\n",
                prog);
}

bool
isTraceFile(const std::string& path)
{
    static const std::string kSuffix = ".trace.json";
    return path.size() >= kSuffix.size() &&
           path.compare(path.size() - kSuffix.size(),
                        kSuffix.size(), kSuffix) == 0;
}

/** Expand files/directories into a sorted trace-file list. */
std::vector<std::string>
collectInputs(const std::vector<std::string>& paths)
{
    namespace fs = std::filesystem;
    std::vector<std::string> files;
    for (const auto& path : paths) {
        if (fs::is_directory(path)) {
            std::vector<std::string> found;
            for (const auto& entry : fs::directory_iterator(path)) {
                if (entry.is_regular_file() &&
                    isTraceFile(entry.path().string()))
                    found.push_back(entry.path().string());
            }
            if (found.empty())
                throw std::runtime_error(
                    "no *.trace.json files in directory: " + path);
            std::sort(found.begin(), found.end());
            files.insert(files.end(), found.begin(), found.end());
        } else {
            files.push_back(path);
        }
    }
    return files;
}

} // anonymous namespace

int
main(int argc, char** argv)
{
    bool check_only = false;
    std::vector<std::string> paths;
    std::vector<std::string> metrics_paths;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--check") {
            check_only = true;
        } else if (arg == "--metrics" && i + 1 < argc) {
            metrics_paths.push_back(argv[++i]);
        } else if (arg == "--help" || arg == "-h") {
            printUsage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown argument: %s\n",
                         arg.c_str());
            printUsage(argv[0]);
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty() && metrics_paths.empty()) {
        std::fprintf(stderr, "no trace or metrics files given\n");
        printUsage(argv[0]);
        return 2;
    }

    std::vector<std::string> files;
    try {
        files = collectInputs(paths);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "dream_prof: %s\n", e.what());
        return 2;
    }

    bool first = true;
    for (const auto& file : files) {
        try {
            const tools::TraceProfile profile =
                tools::readTraceEventJson(file);
            if (check_only) {
                std::printf("OK %s (%zu events, %zu points)\n",
                            file.c_str(), profile.events.size(),
                            profile.points.size());
                continue;
            }
            if (!first)
                std::printf("\n");
            first = false;
            std::printf("--- %s ---\n", file.c_str());
            std::fputs(tools::profileReport(profile).c_str(),
                       stdout);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "dream_prof: %s\n", e.what());
            return 1;
        }
    }

    for (const auto& file : metrics_paths) {
        try {
            const tools::MetricsProfile metrics =
                tools::readMetricsJson(file);
            if (check_only) {
                std::printf("OK %s (%zu counters)\n", file.c_str(),
                            metrics.counters.size());
                continue;
            }
            if (!first)
                std::printf("\n");
            first = false;
            std::printf("--- %s ---\n", file.c_str());
            // Serve dumps lead with their telemetry table; every
            // dump gets the cache-efficiency table.
            if (metrics.has("serve/frames/offered"))
                std::fputs(tools::serveReport(metrics).c_str(),
                           stdout);
            std::fputs(tools::cacheReport(metrics).c_str(), stdout);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "dream_prof: %s\n", e.what());
            return 1;
        }
    }
    return 0;
}
