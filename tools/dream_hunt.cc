/**
 * @file
 * dream_hunt — the adversarial scenario hunter CLI.
 *
 * Runs engine::ScenarioSearch over workload::ScenarioGenSpec knobs x
 * generation seed to find the mixes that maximize a scheduler's
 * UXCost (or its gap over FCFS), then:
 *  - prints a markdown report of the frontier (byte-deterministic
 *    for a given --seed: no timestamps, no wall-clock, shortest
 *    round-trip numbers), comparing the hardest find against the
 *    worst Table 3 preset;
 *  - optionally persists the top mixes as a schema-versioned
 *    hard-scenarios suite (--suite scenarios/hard_v1.json), each
 *    entry re-evaluated across the full evaluation scheduler set so
 *    the file carries expected UXCosts for bench/hard_scenarios and
 *    the CI gate to re-check.
 *
 * usage: dream_hunt [--scheduler NAME] [--objective uxcost|gap]
 *                   [--budget N] [--starts N] [--jobs N] [--seed S]
 *                   [--sim-seed S] [--window US] [--system PRESET]
 *                   [--top K] [--suite FILE] [--report FILE]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "engine/scenario_search.h"
#include "engine/sweep_grid.h"
#include "runner/experiment.h"
#include "runner/table.h"
#include "workload/scenario_suite.h"

using namespace dream;

namespace {

void
usage(const char* prog)
{
    std::printf(
        "usage: %s [options]\n"
        "  --scheduler NAME  scheduler under attack (default "
        "DREAM-Full)\n"
        "  --objective O     uxcost = maximize the scheduler's "
        "UXCost;\n"
        "                    gap = maximize its UXCost minus FCFS's "
        "(default uxcost)\n"
        "  --budget N        distinct (spec, seed) simulations "
        "(default 160)\n"
        "  --starts N        independent search starts (default 6)\n"
        "  --jobs N          worker threads for candidate batches "
        "(default 1;\n"
        "                    0 = all cores; any value is "
        "byte-identical)\n"
        "  --seed S          search-trajectory seed (default 1); "
        "same seed,\n"
        "                    same report, byte for byte\n"
        "  --sim-seed S      simulation seed per candidate (default "
        "11)\n"
        "  --window US       simulated window per candidate "
        "(default 1e6)\n"
        "  --system PRESET   system preset display name (default "
        "4K-1WS+2OS)\n"
        "  --top K           frontier entries reported / persisted "
        "(default 8)\n"
        "  --suite FILE      write the top mixes as a hard-scenarios "
        "suite\n"
        "                    (expected UXCosts re-evaluated across "
        "all\n"
        "                    evaluation schedulers)\n"
        "  --report FILE     write the markdown report to FILE "
        "instead of stdout\n",
        prog);
}

bool
parseSched(const std::string& name, runner::SchedKind* out)
{
    for (const auto kind : runner::allSchedKinds()) {
        if (name == runner::toString(kind)) {
            *out = kind;
            return true;
        }
    }
    return false;
}

bool
parsePreset(const std::string& name, hw::SystemPreset* out)
{
    for (const auto preset : hw::allSystemPresets()) {
        if (name == hw::toString(preset)) {
            *out = preset;
            return true;
        }
    }
    return false;
}

/** %.6g — compact, deterministic report numbers. */
std::string
num(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

} // anonymous namespace

int
main(int argc, char** argv)
{
    engine::ScenarioSearch::Options sopts;
    int top = 8;
    std::string suite_path, report_path;
    std::string system_name = "4K-1WS+2OS";

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        const auto number = [&](double lo) {
            const char* text = value();
            char* end = nullptr;
            const double v = std::strtod(text, &end);
            if (end == text || *end != '\0' || !(v >= lo)) {
                std::fprintf(stderr, "invalid %s value: %s\n",
                             arg.c_str(), text);
                std::exit(2);
            }
            return v;
        };
        if (arg == "--scheduler") {
            const std::string name = value();
            if (!parseSched(name, &sopts.scheduler)) {
                std::fprintf(stderr, "unknown scheduler: %s\n",
                             name.c_str());
                return 2;
            }
        } else if (arg == "--objective") {
            const std::string o = value();
            if (o == "uxcost") {
                sopts.goal = engine::ScenarioSearch::Goal::MaxUxCost;
            } else if (o == "gap") {
                sopts.goal = engine::ScenarioSearch::Goal::MaxGap;
            } else {
                std::fprintf(stderr,
                             "invalid --objective (want uxcost or "
                             "gap): %s\n",
                             o.c_str());
                return 2;
            }
        } else if (arg == "--budget") {
            sopts.budget = int(number(1.0));
        } else if (arg == "--starts") {
            sopts.starts = int(number(1.0));
        } else if (arg == "--jobs" || arg == "-j") {
            sopts.jobs = int(number(0.0));
        } else if (arg == "--seed") {
            sopts.searchSeed = uint64_t(number(0.0));
        } else if (arg == "--sim-seed") {
            sopts.simSeed = uint64_t(number(0.0));
        } else if (arg == "--window") {
            sopts.windowUs = number(1.0);
        } else if (arg == "--system") {
            system_name = value();
            if (!parsePreset(system_name, &sopts.system)) {
                std::fprintf(stderr, "unknown system preset: %s\n",
                             system_name.c_str());
                return 2;
            }
        } else if (arg == "--top") {
            top = int(number(1.0));
        } else if (arg == "--suite") {
            suite_path = value();
        } else if (arg == "--report") {
            report_path = value();
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown argument: %s\n",
                         arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    // Activation windows should fall inside the simulated window so
    // task dynamicity manifests (same discipline as gen_scenarios).
    sopts.base.horizonUs = sopts.windowUs;

    // Reference point: the target scheduler's UXCost on the five
    // Table 3 presets — "harder than anything the paper evaluates"
    // means beating the worst of these.
    engine::SweepGrid ref;
    for (const auto preset : workload::allScenarioPresets())
        ref.addScenario(preset);
    ref.addSystem(sopts.system)
        .addScheduler(sopts.scheduler)
        .seeds({sopts.simSeed})
        .window(sopts.windowUs);
    const engine::Engine engine(engine::EngineOptions(sopts.jobs));
    double ref_worst = 0.0;
    std::string ref_worst_name;
    for (const auto& r : engine.run(ref)) {
        if (r.uxCost > ref_worst) {
            ref_worst = r.uxCost;
            ref_worst_name = r.scenario;
        }
    }

    engine::ScenarioSearch search(sopts);
    const auto result = search.run();
    if (result.frontier.empty()) {
        std::fprintf(stderr, "hunt evaluated no candidates\n");
        return 1;
    }
    const size_t keep =
        std::min(size_t(top), result.frontier.size());

    // Re-evaluate the kept mixes across the full evaluation
    // scheduler set: the suite's expected values, and the report's
    // per-scheduler columns.
    const auto schedulers = runner::evaluationSchedulers();
    engine::SweepGrid final_grid;
    for (size_t i = 0; i < keep; ++i) {
        const auto& c = result.frontier[i];
        char name[32];
        std::snprintf(name, sizeof name, "hard-%02zu", i + 1);
        const workload::ScenarioGenSpec spec = c.spec;
        const uint64_t seed = c.genSeed;
        final_grid.addScenario(name, [spec, seed]() {
            const workload::ScenarioGenerator gen(spec);
            return gen.generate(seed);
        });
    }
    final_grid.addSystem(sopts.system)
        .seeds({sopts.simSeed})
        .window(sopts.windowUs);
    for (const auto kind : schedulers)
        final_grid.addScheduler(kind);
    const auto final_records = engine.run(final_grid);

    // ------------------------------------------------ the report
    std::ostringstream md;
    const char* goal_name =
        sopts.goal == engine::ScenarioSearch::Goal::MaxGap
            ? "gap"
            : "uxcost";
    md << "# dream_hunt report\n\n";
    md << "| config | value |\n|---|---|\n";
    md << "| scheduler | " << runner::toString(sopts.scheduler)
       << " |\n";
    md << "| objective | " << goal_name << " |\n";
    md << "| system | " << system_name << " |\n";
    md << "| window (us) | " << num(sopts.windowUs) << " |\n";
    md << "| budget | " << sopts.budget << " |\n";
    md << "| starts | " << sopts.starts << " |\n";
    md << "| search seed | " << sopts.searchSeed << " |\n";
    md << "| sim seed | " << sopts.simSeed << " |\n\n";
    md << "Search: " << search.simulations()
       << " distinct mixes simulated, " << search.transpositionHits()
       << " transposition hits, " << search.prunedStarts()
       << " starts pruned.\n\n";
    md << "Reference: worst Table 3 preset for "
       << runner::toString(sopts.scheduler) << " is "
       << ref_worst_name << " (UXCost " << num(ref_worst) << ").\n\n";

    const auto& best = result.best;
    const double ratio =
        ref_worst > 0.0 ? best.uxTarget / ref_worst : 0.0;
    md << "Hardest mix: UXCost " << num(best.uxTarget) << " ("
       << num(ratio) << "x the worst preset"
       << (best.uxTarget > ref_worst ? "" : " — NOT harder")
       << "), FCFS " << num(best.uxBaseline) << ", objective value "
       << num(best.value) << ".\n\n";

    md << "## frontier (top " << keep << " of "
       << result.frontier.size() << " evaluated)\n\n";
    md << "| rank | value | " << runner::toString(sopts.scheduler)
       << " | FCFS | gen seed | spec |\n";
    md << "|---|---|---|---|---|---|\n";
    for (size_t i = 0; i < keep; ++i) {
        const auto& c = result.frontier[i];
        md << "| " << (i + 1) << " | " << num(c.value) << " | "
           << num(c.uxTarget) << " | " << num(c.uxBaseline) << " | "
           << c.genSeed << " | `"
           << workload::serializeGenSpec(c.spec) << "` |\n";
    }

    md << "\n## per-scheduler UXCost of the kept mixes\n\n";
    md << "| mix |";
    for (const auto kind : schedulers)
        md << " " << runner::toString(kind) << " |";
    md << "\n|---|";
    for (size_t s = 0; s < schedulers.size(); ++s)
        md << "---|";
    md << "\n";
    // Flat order: scenario slowest, scheduler fastest (one system,
    // one seed) — mix i owns records [i*S, (i+1)*S).
    for (size_t i = 0; i < keep; ++i) {
        char name[32];
        std::snprintf(name, sizeof name, "hard-%02zu", i + 1);
        md << "| " << name << " |";
        for (size_t s = 0; s < schedulers.size(); ++s)
            md << " "
               << num(final_records[i * schedulers.size() + s].uxCost)
               << " |";
        md << "\n";
    }

    if (!report_path.empty()) {
        std::ofstream out(report_path);
        if (!out.is_open()) {
            std::fprintf(stderr,
                         "cannot open --report file for writing: "
                         "%s\n",
                         report_path.c_str());
            return 2;
        }
        out << md.str();
        std::printf("report written to %s\n", report_path.c_str());
    } else {
        std::fputs(md.str().c_str(), stdout);
    }

    if (!suite_path.empty()) {
        workload::HardScenarioSuite suite;
        suite.system = system_name;
        suite.windowUs = sopts.windowUs;
        suite.seeds = {sopts.simSeed};
        for (size_t i = 0; i < keep; ++i) {
            const auto& c = result.frontier[i];
            workload::HardScenarioEntry entry;
            char name[32];
            std::snprintf(name, sizeof name, "hard-%02zu", i + 1);
            entry.name = name;
            entry.spec = c.spec;
            entry.genSeed = c.genSeed;
            for (size_t s = 0; s < schedulers.size(); ++s) {
                entry.expected.emplace_back(
                    runner::toString(schedulers[s]),
                    final_records[i * schedulers.size() + s].uxCost);
            }
            suite.entries.push_back(std::move(entry));
        }
        try {
            workload::saveHardScenarioSuite(suite, suite_path);
        } catch (const std::runtime_error& e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 2;
        }
        std::printf("suite written to %s (%zu entries)\n",
                    suite_path.c_str(), suite.entries.size());
    }
    return 0;
}
