#!/bin/sh
# CI fault injector for dream_shard: the first *chunk* invocation
# that sees no marker file kills itself (SIGKILL, as a crashed
# worker would die), leaving the marker behind so every later
# invocation — including the retry of the killed chunk — runs the
# real bench. The orchestrator's --list probe carries no --chunk and
# passes through untouched. The orchestrator must requeue the killed
# chunk onto another attempt and still produce output byte-identical
# to the unsharded run.
#
# Usage: FLAKY_MARKER=/tmp/marker flaky_worker.sh BENCH [ARGS...]
set -eu

: "${FLAKY_MARKER:?set FLAKY_MARKER to a writable marker path}"

bench="$1"
shift

is_chunk_run=false
for arg in "$@"; do
    [ "$arg" = "--chunk" ] && is_chunk_run=true
done

if $is_chunk_run && [ ! -e "$FLAKY_MARKER" ]; then
    touch "$FLAKY_MARKER"
    kill -9 $$
fi

exec "$bench" "$@"
