#!/bin/sh
# Doc-drift lint: every user-facing --flag must be documented.
#
# Sources of truth are the argument parsers themselves: the shared
# bench driver (bench/bench_main.h, every bench/*.cc target) and each
# tools/*.cc binary. A flag string literal that appears in a parser
# but in none of that surface's READMEs fails the check — so adding a
# flag without documenting it breaks CI, and the docs cannot silently
# rot as the CLIs grow.
#
# Mapping:
#   bench/bench_main.h  -> src/engine/README.md or tools/README.md
#                          (the two docs that describe the shared
#                          bench protocol)
#   tools/dream_X.cc    -> tools/README.md
#
# --help/-h are exempt (self-documenting).
#
# Usage: check_docs.sh [REPO_ROOT]
set -eu

root="${1:-.}"
cd "$root"

fail=0

# Print the unique --flag literals appearing in a source file.
flags_of() {
    grep -oE '"--[a-z0-9][a-z0-9-]*"' "$1" | tr -d '"' | sort -u
}

check() {
    src="$1"
    shift # remaining args: the README(s) allowed to document it
    for flag in $(flags_of "$src"); do
        [ "$flag" = "--help" ] && continue
        ok=0
        for doc in "$@"; do
            if grep -qF -- "$flag" "$doc"; then
                ok=1
                break
            fi
        done
        if [ "$ok" -eq 0 ]; then
            echo "check_docs: $src accepts '$flag' but none of" \
                 "[$*] documents it" >&2
            fail=1
        fi
    done
}

check bench/bench_main.h src/engine/README.md tools/README.md

for src in tools/*.cc; do
    check "$src" tools/README.md
done

# The documentation front door must exist and link every
# per-directory README (acceptance criterion of the docs PR).
for doc in README.md docs/ARCHITECTURE.md; do
    if [ ! -f "$doc" ]; then
        echo "check_docs: $doc is missing" >&2
        fail=1
        continue
    fi
    for sub in src/engine/README.md src/obs/README.md \
               tools/README.md scenarios/README.md; do
        if ! grep -qF -- "$sub" "$doc"; then
            echo "check_docs: $doc does not link $sub" >&2
            fail=1
        fi
    done
done

if [ "$fail" -ne 0 ]; then
    echo "check_docs: documentation drift detected" >&2
    exit 1
fi
echo "check_docs: OK"
