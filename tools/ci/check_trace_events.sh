#!/bin/sh
# CI gate for telemetry event traces: every *.trace.json under the
# given directory must pass dream_prof --check (parse as a Chrome
# trace-event array, carry the required fields per phase, keep
# timestamps non-decreasing per track). An empty directory fails —
# a bench that silently stopped writing traces must not pass the
# observability leg.
#
# Usage: check_trace_events.sh DREAM_PROF TRACE_DIR
set -eu

prof="$1"
dir="$2"

if [ ! -d "$dir" ]; then
    echo "check_trace_events: no such directory: $dir" >&2
    exit 1
fi

found=false
for f in "$dir"/*.trace.json; do
    [ -e "$f" ] || break
    found=true
done
if ! $found; then
    echo "check_trace_events: no *.trace.json files in $dir" >&2
    exit 1
fi

exec "$prof" --check "$dir"
