/**
 * @file
 * dream_shard: single-host work-stealing orchestrator for sharded
 * bench runs. Splits the bench's (filtered) grid ordering into
 * M >> N chunks, drives N worker subprocesses over a dynamic queue
 * (a finished worker immediately grabs the next pending chunk),
 * requeues chunks whose worker failed, and merges the chunk files
 * into `--out` byte-identically to the bench's own unsharded
 * `--out`. Replaces the static `--shard K/N` → dream_merge loop as
 * the recommended way to fan a sweep out on one machine.
 *
 * Exit codes: 0 = merged OK, 1 = a chunk exhausted its retry
 * budget, 2 = usage or environment error.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "tools/shard_sched.h"

using namespace dream;

namespace {

void
printUsage(const char* prog)
{
    std::printf(
        "usage: %s [options] [--] BENCH [BENCH-ARGS...]\n"
        "  -j, --jobs N     worker subprocesses (0 = all cores; "
        "default 0)\n"
        "  --chunks M       chunk count (default: 4 x workers; "
        "chunks are\n                   contiguous ranges of the "
        "filtered grid ordering,\n                   handed out "
        "dynamically as workers finish)\n"
        "  --retries R      extra attempts per failed chunk "
        "(default 2)\n"
        "  --worker-jobs W  --jobs each worker runs with "
        "(default 1)\n"
        "  --filter S       forwarded to the bench\n"
        "  --json           chunk + merged results as JSON\n"
        "  --out F          merged result file (default: stdout)\n"
        "  --report F       write the per-chunk markdown timing "
        "report to F\n"
        "  --tmp DIR        chunk working dir (default: a fresh "
        "temp dir)\n"
        "  --quiet          no per-chunk progress on stderr\n"
        "the merged file is byte-identical to `BENCH --out` run "
        "unsharded;\na killed worker's chunks are re-run on other "
        "workers\n",
        prog);
}

bool
parseCount(const char* text, long* out)
{
    char* end = nullptr;
    *out = std::strtol(text, &end, 10);
    return end != text && *end == '\0' && *out >= 0;
}

} // anonymous namespace

int
main(int argc, char** argv)
{
    tools::OrchestratorOptions opts;
    std::string report_path;
    int i = 1;
    for (; i < argc; ++i) {
        const std::string arg = argv[i];
        long value = 0;
        if ((arg == "--jobs" || arg == "-j") && i + 1 < argc) {
            if (!parseCount(argv[++i], &value)) {
                std::fprintf(stderr, "invalid --jobs value: %s\n",
                             argv[i]);
                return 2;
            }
            opts.jobs = int(value);
        } else if (arg == "--chunks" && i + 1 < argc) {
            if (!parseCount(argv[++i], &value) || value == 0) {
                std::fprintf(stderr, "invalid --chunks value: %s\n",
                             argv[i]);
                return 2;
            }
            opts.chunks = size_t(value);
        } else if (arg == "--retries" && i + 1 < argc) {
            if (!parseCount(argv[++i], &value)) {
                std::fprintf(stderr, "invalid --retries value: %s\n",
                             argv[i]);
                return 2;
            }
            opts.retries = int(value);
        } else if (arg == "--worker-jobs" && i + 1 < argc) {
            if (!parseCount(argv[++i], &value)) {
                std::fprintf(stderr,
                             "invalid --worker-jobs value: %s\n",
                             argv[i]);
                return 2;
            }
            opts.workerJobs = int(value);
        } else if (arg == "--filter" && i + 1 < argc) {
            opts.filter = argv[++i];
        } else if (arg == "--json") {
            opts.json = true;
        } else if (arg == "--out" && i + 1 < argc) {
            opts.out = argv[++i];
        } else if (arg == "--report" && i + 1 < argc) {
            report_path = argv[++i];
        } else if (arg == "--tmp" && i + 1 < argc) {
            opts.tempDir = argv[++i];
        } else if (arg == "--quiet") {
            opts.verbose = false;
        } else if (arg == "--help" || arg == "-h") {
            printUsage(argv[0]);
            return 0;
        } else if (arg == "--") {
            ++i;
            break;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown argument: %s\n",
                         arg.c_str());
            printUsage(argv[0]);
            return 2;
        } else {
            break; // first positional: the bench command starts
        }
    }
    for (; i < argc; ++i)
        opts.command.push_back(argv[i]);
    if (opts.command.empty()) {
        std::fprintf(stderr, "no bench command given\n");
        printUsage(argv[0]);
        return 2;
    }

    try {
        const auto result = tools::runOrchestrator(opts);

        if (!report_path.empty()) {
            std::ofstream report(report_path);
            if (!report.is_open()) {
                std::fprintf(stderr,
                             "cannot open --report file for "
                             "writing: %s\n",
                             report_path.c_str());
                return 2;
            }
            tools::writeChunkReport(opts, result, report);
        }

        if (!result.ok) {
            std::fprintf(stderr,
                         "dream_shard: %zu chunk(s) failed after "
                         "%d attempt(s) each; no merged output "
                         "written\n",
                         result.failedChunks, 1 + opts.retries);
            return 1;
        }
        std::fprintf(stderr,
                     "dream_shard: merged %zu rows from %zu "
                     "chunk(s) on %zu worker(s) in %.2fs "
                     "(%zu requeued attempt(s))\n",
                     result.rows, result.chunks.size(),
                     result.workers, result.wallSeconds,
                     result.requeues);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "dream_shard: %s\n", e.what());
        return 2;
    }
    return 0;
}
