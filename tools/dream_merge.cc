/**
 * @file
 * dream_merge: merge N shard CSVs (`bench --shard K/N --out`) back
 * into the canonical single-run result CSV. Inputs may be given in
 * any order; the merged file is byte-identical to the unsharded
 * `--out` of the same bench. Exits 0 on success, 2 on any error
 * (unreadable input, schema mismatch, overlapping shards).
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/result_sink.h"
#include "tools/csv_merge.h"

using namespace dream;

namespace {

void
printUsage(const char* prog)
{
    std::printf("usage: %s [--out FILE] SHARD.csv [SHARD.csv ...]\n"
                "  --out F   write the merged CSV to F (default: "
                "stdout)\n"
                "merges shard result CSVs (bench --shard K/N --out) "
                "back into the\ncanonical single-run CSV; errors on "
                "overlapping shards or mixed grids\n",
                prog);
}

} // anonymous namespace

int
main(int argc, char** argv)
{
    std::string out_path;
    std::vector<std::string> inputs;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            printUsage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown argument: %s\n",
                         arg.c_str());
            printUsage(argv[0]);
            return 2;
        } else {
            inputs.push_back(arg);
        }
    }
    if (inputs.empty()) {
        std::fprintf(stderr, "no input CSVs given\n");
        printUsage(argv[0]);
        return 2;
    }

    try {
        std::vector<engine::CsvTable> tables;
        tables.reserve(inputs.size());
        for (const auto& path : inputs)
            tables.push_back(engine::readResultCsv(path));

        if (out_path.empty()) {
            tools::mergeResultCsvs(tables, std::cout);
        } else {
            std::ofstream out(out_path);
            if (!out.is_open()) {
                std::fprintf(stderr,
                             "cannot open --out file for writing: "
                             "%s\n",
                             out_path.c_str());
                return 2;
            }
            tools::mergeResultCsvs(tables, out);
        }

        size_t rows = 0;
        for (const auto& t : tables)
            rows += t.rows.size();
        std::fprintf(stderr, "merged %zu rows from %zu shard(s)\n",
                     rows, inputs.size());
    } catch (const std::exception& e) {
        std::fprintf(stderr, "dream_merge: %s\n", e.what());
        return 2;
    }
    return 0;
}
