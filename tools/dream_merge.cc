/**
 * @file
 * dream_merge: merge N shard or chunk result files (`bench --shard
 * K/N --out` / `bench --chunk B:E --out`) back into the canonical
 * single-run file. Both result formats merge: CSV inputs rebuild
 * the unsharded CSV, JSON inputs (`--json` bench runs, sniffed from
 * the content or forced with --json) rebuild the unsharded JSON
 * array — byte-identical either way, in any input order. Exits 0 on
 * success, 2 on any error (unreadable input, mixed formats, schema
 * mismatch, overlapping shards).
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "tools/json_result.h"

using namespace dream;

namespace {

void
printUsage(const char* prog)
{
    std::printf("usage: %s [--out FILE] [--json] SHARD "
                "[SHARD ...]\n"
                "  --out F   write the merged result to F (default: "
                "stdout)\n"
                "  --json    treat inputs/output as result JSON "
                "(otherwise\n            sniffed from the input "
                "content)\n"
                "merges shard/chunk result files (bench --shard K/N "
                "or --chunk B:E,\nCSV or --json) back into the "
                "canonical single-run file; errors on\nmixed "
                "formats, overlapping shards or mixed grids\n",
                prog);
}

} // anonymous namespace

int
main(int argc, char** argv)
{
    std::string out_path;
    bool force_json = false;
    std::vector<std::string> inputs;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--json") {
            force_json = true;
        } else if (arg == "--help" || arg == "-h") {
            printUsage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown argument: %s\n",
                         arg.c_str());
            printUsage(argv[0]);
            return 2;
        } else {
            inputs.push_back(arg);
        }
    }
    if (inputs.empty()) {
        std::fprintf(stderr, "no input CSVs given\n");
        printUsage(argv[0]);
        return 2;
    }

    try {
        // Format: --json forces JSON; otherwise the non-empty
        // inputs decide (and must agree). Empty files — rowless
        // shards — are compatible with either.
        bool saw_csv = false, saw_json = false;
        for (const auto& path : inputs) {
            switch (tools::sniffResultFormat(path)) {
              case tools::ResultFormat::Csv:  saw_csv = true;  break;
              case tools::ResultFormat::Json: saw_json = true; break;
              case tools::ResultFormat::Empty:                 break;
            }
        }
        if (saw_csv && saw_json)
            throw std::runtime_error(
                "mixed CSV and JSON inputs cannot be merged");
        if (force_json && saw_csv)
            throw std::runtime_error(
                "--json given but the inputs are CSV");
        const bool json = force_json || saw_json;

        // Merge into a buffer BEFORE opening (truncating) --out, so
        // a malformed or overlapping shard cannot destroy a
        // previous good merge: --out is only touched once the whole
        // merge has succeeded.
        std::ostringstream buffer;
        const size_t rows =
            tools::mergeResultFiles(inputs, json, buffer);

        if (out_path.empty()) {
            std::cout << buffer.str() << std::flush;
        } else {
            std::ofstream out_file(out_path);
            if (!out_file.is_open()) {
                std::fprintf(stderr,
                             "cannot open --out file for writing: "
                             "%s\n",
                             out_path.c_str());
                return 2;
            }
            out_file << buffer.str() << std::flush;
        }
        std::fprintf(stderr, "merged %zu rows from %zu shard(s)\n",
                     rows, inputs.size());
    } catch (const std::exception& e) {
        std::fprintf(stderr, "dream_merge: %s\n", e.what());
        return 2;
    }
    return 0;
}
